(** Static checker for RFL: name resolution and monomorphic type checking.

    Rejects the usual suspects before any execution: unknown identifiers,
    arity/type mismatches, non-boolean conditions, assignment through the
    wrong shape (scalar vs array), [return] outside functions, and
    non-constant initializers for shared globals (globals are initialized
    before the threads start, so their initializers must not read other
    shared state). *)

exception Check_error of Token.pos * string

let err pos fmt = Fmt.kstr (fun m -> raise (Check_error (pos, m))) fmt

type global_info = { g_ty : Ast.ty; g_array : bool }

type env = {
  globals : (string, global_info) Hashtbl.t;
  locks : (string, unit) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  mutable scopes : (string, Ast.ty) Hashtbl.t list;  (** innermost first *)
  in_function : Ast.func option;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let find_local env name =
  List.find_map (fun tbl -> Hashtbl.find_opt tbl name) env.scopes

let declare_local env pos name ty =
  match env.scopes with
  | [] -> assert false
  | tbl :: _ ->
      if Hashtbl.mem tbl name then err pos "duplicate local variable %s" name;
      Hashtbl.add tbl name ty

let lock_exists env pos name =
  if not (Hashtbl.mem env.locks name) then err pos "unknown lock %s" name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec type_of_expr env (e : Ast.expr) : Ast.ty =
  match e.Ast.e with
  | Ast.Eint _ -> Ast.Tint
  | Ast.Ebool _ -> Ast.Tbool
  | Ast.Estring _ -> Ast.Tstring
  | Ast.Evar name -> (
      match find_local env name with
      | Some ty -> ty
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some { g_array = true; _ } ->
              err e.Ast.epos "array %s used without an index" name
          | Some { g_ty; _ } -> g_ty
          | None -> err e.Ast.epos "unknown variable %s" name))
  | Ast.Eindex (name, idx) -> (
      check_ty env idx Ast.Tint;
      match Hashtbl.find_opt env.globals name with
      | Some { g_array = true; g_ty } -> g_ty
      | Some { g_array = false; _ } -> err e.Ast.epos "%s is not an array" name
      | None -> err e.Ast.epos "unknown array %s" name)
  | Ast.Ebin (op, a, b) -> (
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          check_ty env a Ast.Tint;
          check_ty env b Ast.Tint;
          Ast.Tint
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          check_ty env a Ast.Tint;
          check_ty env b Ast.Tint;
          Ast.Tbool
      | Ast.Eq | Ast.Neq ->
          let ta = type_of_expr env a and tb = type_of_expr env b in
          if not (Ast.ty_equal ta tb) then
            err e.Ast.epos "cannot compare %a with %a" Ast.pp_ty ta Ast.pp_ty tb;
          Ast.Tbool
      | Ast.And | Ast.Or ->
          check_ty env a Ast.Tbool;
          check_ty env b Ast.Tbool;
          Ast.Tbool)
  | Ast.Eneg a ->
      check_ty env a Ast.Tint;
      Ast.Tint
  | Ast.Enot a ->
      check_ty env a Ast.Tbool;
      Ast.Tbool
  | Ast.Ecall (name, args) -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> err e.Ast.epos "unknown function %s" name
      | Some f ->
          check_call env e.Ast.epos f args;
          (match f.Ast.fret with
          | Some ty -> ty
          | None -> err e.Ast.epos "function %s returns no value" name))

and check_call env pos (f : Ast.func) args =
  let np = List.length f.Ast.fparams and na = List.length args in
  if np <> na then err pos "%s expects %d argument(s) but got %d" f.Ast.fname np na;
  List.iter2 (fun (_, ty) arg -> check_ty env arg ty) f.Ast.fparams args

and check_ty env e ty =
  let t = type_of_expr env e in
  if not (Ast.ty_equal t ty) then
    err e.Ast.epos "expected %a but this expression has type %a" Ast.pp_ty ty Ast.pp_ty
      t

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec check_stmt env (st : Ast.stmt) =
  let pos = st.Ast.spos in
  match st.Ast.s with
  | Ast.Sassign (name, e) -> (
      match find_local env name with
      | Some ty -> check_ty env e ty
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some { g_array = true; _ } -> err pos "cannot assign whole array %s" name
          | Some { g_ty; _ } -> check_ty env e g_ty
          | None -> err pos "unknown variable %s" name))
  | Ast.Sindex_assign (name, idx, e) -> (
      check_ty env idx Ast.Tint;
      match Hashtbl.find_opt env.globals name with
      | Some { g_array = true; g_ty } -> check_ty env e g_ty
      | Some { g_array = false; _ } -> err pos "%s is not an array" name
      | None -> err pos "unknown array %s" name)
  | Ast.Slet (name, e) ->
      let ty = type_of_expr env e in
      declare_local env pos name ty
  | Ast.Sif (cond, then_, else_) ->
      check_ty env cond Ast.Tbool;
      check_block env then_;
      Option.iter (check_block env) else_
  | Ast.Swhile (cond, body) ->
      check_ty env cond Ast.Tbool;
      check_block env body
  | Ast.Sfor (init, cond, step, body) ->
      push_scope env;
      check_stmt env init;
      check_ty env cond Ast.Tbool;
      check_stmt env step;
      check_block env body;
      pop_scope env
  | Ast.Ssync (l, body) ->
      lock_exists env pos l;
      check_block env body
  | Ast.Slock l | Ast.Sunlock l | Ast.Swait l | Ast.Snotify l | Ast.Snotify_all l ->
      lock_exists env pos l
  | Ast.Ssleep | Ast.Sskip -> ()
  | Ast.Sassert e -> check_ty env e Ast.Tbool
  | Ast.Serror _ -> ()
  | Ast.Sprint e -> ignore (type_of_expr env e)
  | Ast.Sreturn eo -> (
      match env.in_function with
      | None -> err pos "return outside of a function"
      | Some f -> (
          match (f.Ast.fret, eo) with
          | None, None -> ()
          | None, Some _ -> err pos "function %s returns no value" f.Ast.fname
          | Some _, None ->
              err pos "function %s must return a value" f.Ast.fname
          | Some ty, Some e -> check_ty env e ty))
  | Ast.Scall (name, args) -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> err pos "unknown function %s" name
      | Some f -> check_call env pos f args)

and check_block env block =
  push_scope env;
  List.iter (check_stmt env) block;
  pop_scope env

(* ------------------------------------------------------------------ *)
(* Program                                                             *)

let constant_value (e : Ast.expr) : Ast.expr option =
  (* shared initializers: literals, possibly negated *)
  match e.Ast.e with
  | Ast.Eint _ | Ast.Ebool _ -> Some e
  | Ast.Eneg { Ast.e = Ast.Eint n; _ } -> Some { e with Ast.e = Ast.Eint (-n) }
  | _ -> None

let check (prog : Ast.program) : unit =
  let globals = Hashtbl.create 16 in
  let locks = Hashtbl.create 8 in
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (g : Ast.shared_decl) ->
      if Hashtbl.mem globals g.Ast.gname then
        err g.Ast.gpos "duplicate shared variable %s" g.Ast.gname;
      (match g.Ast.garray with
      | Some n when n <= 0 -> err g.Ast.gpos "array %s must have positive size" g.Ast.gname
      | _ -> ());
      (match constant_value g.Ast.ginit with
      | None ->
          err g.Ast.gpos "initializer of shared %s must be a constant literal"
            g.Ast.gname
      | Some c -> (
          match (c.Ast.e, g.Ast.gty) with
          | Ast.Eint _, Ast.Tint | Ast.Ebool _, Ast.Tbool -> ()
          | _ ->
              err g.Ast.gpos "initializer of %s does not match its type %a"
                g.Ast.gname Ast.pp_ty g.Ast.gty));
      Hashtbl.add globals g.Ast.gname
        { g_ty = g.Ast.gty; g_array = g.Ast.garray <> None })
    prog.Ast.shareds;
  List.iter
    (fun (name, pos) ->
      if Hashtbl.mem locks name then err pos "duplicate lock %s" name;
      Hashtbl.add locks name ())
    prog.Ast.locks;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.Ast.fname then
        err f.Ast.fpos "duplicate function %s" f.Ast.fname;
      Hashtbl.add funcs f.Ast.fname f)
    prog.Ast.funcs;
  let thread_names = Hashtbl.create 8 in
  List.iter
    (fun (t : Ast.thread_decl) ->
      if Hashtbl.mem thread_names t.Ast.tname then
        err t.Ast.tpos "duplicate thread %s" t.Ast.tname;
      (* 'after' dependencies must name earlier-declared threads, so the
         dependency graph is a DAG by construction and the interpreter can
         join each dependency before forking the dependent. *)
      let seen_dep = Hashtbl.create 4 in
      List.iter
        (fun dep ->
          if String.equal dep t.Ast.tname then
            err t.Ast.tpos "thread %s cannot run after itself" t.Ast.tname;
          if not (Hashtbl.mem thread_names dep) then
            err t.Ast.tpos
              "thread %s runs after %s, which is not declared earlier" t.Ast.tname
              dep;
          if Hashtbl.mem seen_dep dep then
            err t.Ast.tpos "thread %s lists %s twice in its after clause"
              t.Ast.tname dep;
          Hashtbl.add seen_dep dep ())
        t.Ast.tafter;
      Hashtbl.add thread_names t.Ast.tname ())
    prog.Ast.threads;
  if prog.Ast.threads = [] then
    err { Token.line = 1; col = 1 } "program declares no threads";
  (* check function bodies *)
  List.iter
    (fun (f : Ast.func) ->
      let env =
        { globals; locks; funcs; scopes = []; in_function = Some f }
      in
      push_scope env;
      List.iter (fun (p, ty) -> declare_local env f.Ast.fpos p ty) f.Ast.fparams;
      check_block env f.Ast.fbody;
      pop_scope env)
    prog.Ast.funcs;
  (* check thread bodies *)
  List.iter
    (fun (t : Ast.thread_decl) ->
      let env = { globals; locks; funcs; scopes = []; in_function = None } in
      check_block env t.Ast.tbody)
    prog.Ast.threads
