(** RAPOS-style partial-order sampling (Sen, ASE 2007 [45]).

    The paper's §6 compares RaceFuzzer against the author's earlier RAPOS
    algorithm, which samples partial orders of a concurrent execution
    nearly uniformly instead of sampling interleavings — and observes that
    it "cannot often discover error-prone schedules with high probability
    because the number of partial orders ... can be astronomically large".
    We include a faithful-in-spirit approximation as an extra baseline for
    the ablation benches.

    The sampler works in rounds.  Each round selects a random subset of the
    enabled threads whose pending operations are pairwise *independent*
    (they do not touch the same location with a write, and do not contend
    for the same lock), executes the whole subset in random order, and only
    then starts a new round.  Dependent operations thus get linearized in a
    random order once per round, which is precisely sampling an extension
    of the partial order rather than an interleaving. *)

open Rf_util
open Rf_runtime

let conflict (a : Op.pend) (b : Op.pend) =
  match (Op.pend_mem a, Op.pend_mem b) with
  | Some ma, Some mb ->
      Loc.equal ma.Op.loc mb.Op.loc
      && (ma.Op.access = Rf_events.Event.Write || mb.Op.access = Rf_events.Event.Write)
  | _ -> (
      (* lock contention: both pending ops address the same lock *)
      let lock_of = function
        | Op.P_acquire { lock; _ }
        | Op.P_release { lock; _ }
        | Op.P_wait { lock; _ }
        | Op.P_reacquire { lock; _ }
        | Op.P_notify { lock; _ } ->
            Some lock
        | _ -> None
      in
      match (lock_of a, lock_of b) with
      | Some la, Some lb -> la = lb
      | _ -> false)

let strategy () : Strategy.t =
  (* tids selected for the current round, still to execute *)
  let round : int list ref = ref [] in
  let choose (view : Strategy.view) =
    let rec from_round () =
      match !round with
      | [] -> None
      | tid :: rest ->
          round := rest;
          if List.exists (fun (e : Strategy.entry) -> e.tid = tid) view.enabled then
            Some tid
          else from_round ()
    in
    match from_round () with
    | Some tid -> tid
    | None ->
        (* Start a new round: sample a maximal pairwise-independent subset. *)
        let entries = Array.of_list view.enabled in
        Prng.shuffle view.prng entries;
        let chosen =
          Array.fold_left
            (fun acc (e : Strategy.entry) ->
              if List.for_all (fun (c : Strategy.entry) -> not (conflict e.pend c.pend)) acc
              then e :: acc
              else acc)
            [] entries
        in
        let tids = List.map (fun (e : Strategy.entry) -> e.tid) chosen in
        (match tids with
        | [] ->
            (* all enabled conflict with each other; degenerate to random *)
            (Prng.pick view.prng view.enabled).Strategy.tid
        | t :: rest ->
            round := rest;
            t)
  in
  Strategy.make ~name:"rapos" choose
