(** Workload descriptor: one benchmark program analogue with the metadata
    Table 1 reports about it. *)

type t = {
  name : string;
  descr : string;
  sloc : int;  (** lines of model code, reported like the paper's SLOC column *)
  program : unit -> unit;  (** fresh main; must be run inside an engine *)
  known_real_races : int option;
      (** paper column 8: races confirmed by prior studies; [None] = '-' *)
  expected_real : int option;
      (** planted real races in our analogue (for tests); [None] = unknown *)
  interactive : bool;
      (** paper skips runtime columns for jigsaw; mirrored here *)
  static : Rf_static.Static.t option;
      (** hand-built {!Rf_static.Static.Model} of the workload's shared
          accesses, for the [--static-filter] pre-filter; [None] = the
          workload has no model and campaigns run unfiltered *)
}

let make ?(known_real_races = None) ?(expected_real = None) ?(interactive = false)
    ?(static = None) ~name ~descr ~sloc program =
  { name; descr; sloc; program; known_real_races; expected_real; interactive; static }

let pp ppf t = Fmt.pf ppf "%s (%d sloc): %s" t.name t.sloc t.descr
