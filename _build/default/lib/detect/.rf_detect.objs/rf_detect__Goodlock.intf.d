lib/detect/goodlock.mli: Event Format Rf_events Rf_util Site
