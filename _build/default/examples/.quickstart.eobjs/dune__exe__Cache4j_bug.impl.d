examples/cache4j_bug.ml: Fmt Fun List Printexc Racefuzzer Rf_runtime Rf_util Rf_workloads Site
