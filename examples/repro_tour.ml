(* Repro tour: fuzz the paper's Figure 2 until it fails, record the
   failing schedule, shrink it to a minimal counterexample, and replay the
   minimized artifact — the full record/replay/shrink loop from lib/replay.

   Run with:  dune exec examples/repro_tour.exe *)

module Fuzzer = Racefuzzer.Fuzzer
module Schedule = Rf_replay.Schedule
module Replayer = Rf_replay.Replayer
module Shrinker = Rf_replay.Shrinker

let program () = Rf_workloads.Figure2.program ()
let pair = Rf_workloads.Figure2.race_pair

let () =
  Fmt.pr "== Schedule record / shrink / replay tour (Figure 2) ==@.@.";

  (* 1. Fuzz: run phase-2 trials under the race-directed strategy until
     one ends in the ERROR. *)
  let rec hunt seed =
    if seed > 99 then failwith "no erroring seed in 0..99"
    else
      let trial, sched =
        Fuzzer.record_trial ~target:"figure2[k=50]" ~program pair seed
      in
      match Schedule.error_fingerprint trial.Fuzzer.t_outcome with
      | Some fp -> (seed, fp, sched)
      | None -> hunt (seed + 1)
  in
  let seed, fp, sched = hunt 0 in
  Fmt.pr "1. fuzz:    seed %d fails with@.            %s@." seed fp;

  (* 2. Record: the schedule of that failing run — every scheduling
     decision, keyed by (thread, op kind, statement site). *)
  Fmt.pr "2. record:  %a@." Schedule.pp sched;

  (* 3. Shrink: delta-debug the decision sequence against a replay
     oracle; only edits that still reproduce the fingerprint survive. *)
  let min_sched, stats =
    match Fuzzer.minimize_schedule ~program sched with
    | Some r -> r
    | None -> failwith "minimization lost the error"
  in
  Fmt.pr "3. shrink:  %a@." Shrinker.pp_stats stats;

  (* 4. Save the artifact, then replay it from disk — what
     `racefuzzer replay foo.sched.json` does. *)
  let file = Filename.temp_file "repro_tour" ".sched.json" in
  Schedule.save file min_sched;
  let reloaded = Schedule.load file in
  let outcome, status = Fuzzer.replay_schedule ~program reloaded in
  Fmt.pr "4. replay:  %s (divergence: %s)@."
    (match Schedule.error_fingerprint outcome with
    | Some fp' when Some fp' = reloaded.Schedule.meta.Schedule.m_error ->
        "reproduced " ^ fp'
    | Some fp' -> "DIFFERENT error " ^ fp'
    | None -> "error NOT reproduced")
    (match status.Replayer.divergence with
    | None -> "none"
    | Some d -> Fmt.str "%a" Replayer.pp_divergence d);
  Sys.remove file;

  (* The minimized counterexample, as a human-readable story. *)
  Fmt.pr "@.minimal counterexample:@.%a@." Schedule.pp_narrative min_sched;
  if Schedule.length min_sched = 0 then
    Fmt.pr
      "@.(an empty schedule is a real verdict: from this seed, plain@.\
      \ non-preemptive execution already reaches the error — no forced@.\
      \ preemption is needed at all)@.";

  (* Contrast: Figure 1's ERROR1 needs an actual preemption — its minimal
     schedule is non-empty and ends right at the forced switch. *)
  let f1 () = Rf_workloads.Figure1.program () in
  let f1_pair = Rf_workloads.Figure1.real_pair in
  let rec hunt1 seed =
    if seed > 99 then failwith "figure1: no erroring seed in 0..99"
    else
      let trial, sched = Fuzzer.record_trial ~target:"figure1" ~program:f1 f1_pair seed in
      if Schedule.error_fingerprint trial.Fuzzer.t_outcome <> None then sched
      else hunt1 (seed + 1)
  in
  let sched1 = hunt1 0 in
  let min1, stats1 =
    match Fuzzer.minimize_schedule ~program:f1 sched1 with
    | Some r -> r
    | None -> failwith "figure1: minimization lost the error"
  in
  Fmt.pr "@.-- contrast: Figure 1 needs a preemption --@.";
  Fmt.pr "shrink:  %a@.%a@." Shrinker.pp_stats stats1 Schedule.pp_narrative min1
