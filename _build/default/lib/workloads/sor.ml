(** Analogue of [sor] (ETH successive over-relaxation benchmark, paper
    Table 1: 8 potential races, 0 real).

    Two workers relax interleaved rows of a grid in alternating red/black
    half-sweeps.  Phase changes are signalled through lock-guarded flag
    handshakes (the benchmark's volatile-flag phase protocol), so every
    cross-worker access pair the hybrid detector reports — the neighbouring
    row reads against the other worker's writes, plus the protocol's own
    payload cells — is implicitly ordered and must be rejected by
    RaceFuzzer: the paper found *no* real race in sor. *)

open Rf_util
open Rf_runtime

let file = "sor"
let s line label = Site.make ~file ~line label

let site_grid_r = s 1 "G[i-1..i+1][j](read)"
let site_grid_w = s 2 "G[i][j](write)"

let program ?(rows = 6) ?(cols = 4) ?(sweeps = 2) () =
  let farm = Common.Farm.create ~file ~base_line:50 6 in
  let grid = Api.Sarray.make (rows * cols) 1 in
  let idx i j = (i * cols) + j in
  (* phase protocol: worker w waits until phase counter for its colour is
     published through a monitor-guarded cell (proper wait/notify, so it is
     ordered even for weak HB via the notify edges) *)
  let phase_lock = Lock.create ~name:"phase" () in
  let phase = Api.Cell.make ~name:"phase" 0 in
  let advance_phase () =
    Api.sync ~site:(s 10 "phase.sync") phase_lock (fun () ->
        Api.Cell.write ~site:(s 11 "phase++") phase
          (Api.Cell.read ~site:(s 12 "phase(read)") phase + 1);
        Api.notify_all ~site:(s 13 "phase.notifyAll") phase_lock)
  in
  let await_phase p =
    Api.sync ~site:(s 10 "phase.sync") phase_lock (fun () ->
        while Api.Cell.read ~site:(s 12 "phase(read)") phase < p do
          Api.wait ~site:(s 14 "phase.wait") phase_lock
        done)
  in
  let relax_row i =
    for j = 0 to cols - 1 do
      let up = if i > 0 then Api.Sarray.get ~site:site_grid_r grid (idx (i - 1) j) else 0 in
      let down =
        if i < rows - 1 then Api.Sarray.get ~site:site_grid_r grid (idx (i + 1) j) else 0
      in
      let self = Api.Sarray.get ~site:site_grid_r grid (idx i j) in
      Api.Sarray.set ~site:site_grid_w grid (idx i j) ((up + down + (2 * self)) / 4 + 1)
    done
  in
  (* worker 0 relaxes even rows on even phases; worker 1 odd rows on odd *)
  let worker w () =
    for sweep = 0 to sweeps - 1 do
      let p = (2 * sweep) + w in
      await_phase p;
      let i = ref w in
      while !i < rows do
        relax_row !i;
        i := !i + 2
      done;
      advance_phase ()
    done
  in
  (* the convergence monitor polls statistics the main thread publishes
     through the handshakes; publisher and consumer run concurrently, so
     the pairs are visible to (and falsely reported by) hybrid detection *)
  let mon = Api.fork ~name:"sor-monitor" (fun () -> Common.Farm.consume_rounds farm 40) in
  let h0 = Api.fork ~name:"sor0" (worker 0) in
  let h1 = Api.fork ~name:"sor1" (worker 1) in
  Common.Farm.publish farm 7;
  Api.join h0;
  Api.join h1;
  Api.join mon

let workload =
  Workload.make ~name:"sor"
    ~descr:"ETH SOR analogue: phase-ordered grid sweeps, zero real races"
    ~sloc:88 ~known_real_races:(Some 0) ~expected_real:(Some 0) (fun () -> program ())
