examples/quickstart.ml: Api Fmt Fun List Lock Option Printexc Printf Racefuzzer Rf_runtime Rf_util Site
