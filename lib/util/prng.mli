(** Deterministic pseudo-random number generation (SplitMix64).

    All engine nondeterminism draws from one seeded stream, which is what
    makes whole executions replayable from their seed — RaceFuzzer's
    record-free replay (paper §2.2). *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] — a fresh generator; equal seeds yield equal streams. *)

val of_int64 : int64 -> t
(** Resume a generator from a saved {!state}. *)

val copy : t -> t
(** An independent generator that continues the same stream. *)

val state : t -> int64
(** Current internal state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Rewind/forward the generator to a saved {!state} in place.  Schedule
    replay ({!Rf_replay}) restores the recorded post-decision state at
    every switch point so engine-internal draws (notify target selection)
    consume exactly the stream the recorded run consumed. *)

val next_int64 : t -> int64
(** Next raw 64-bit output; advances the state. *)

val split : t -> t
(** A statistically independent child generator seeded from [t]. *)

val bool : t -> bool
(** Fair coin — Algorithm 1's random race resolution. *)

val int : t -> int -> int
(** [int t bound] — uniform in [\[0, bound)].  Raises [Invalid_argument]
    when [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  Raises [Invalid_argument] on the empty list. *)

val pick_arr : t -> 'a array -> 'a
(** Uniform choice from an array.  Raises on empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pp : Format.formatter -> t -> unit
