open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Algo = Racefuzzer.Algo
module Outcome = Rf_runtime.Outcome

type stats = {
  s_pairs : int;
  s_resolved : int;
  s_trials : int;
  s_cancelled : int;
  s_discarded : int;
  s_waves : int;
  s_wall : float;
  s_phase1_wall : float;
  s_throughput : float;
  s_domains : int;
  s_domain_trials : int array;
  s_domain_busy : float array;
}

type result = { analysis : Fuzzer.analysis; stats : stats }

(* ------------------------------------------------------------------ *)
(* Per-pair campaign state.

   [ps_first_race]/[ps_first_error] are minima over *executed* trials.
   Because a trial at index i is only ever cancelled when some already-
   known resolution bound k < i exists — and the bound can only shrink as
   more trials finish — every index at or below the final bound is
   guaranteed to execute.  Hence the final minima equal the minima a
   sequential run would observe, and the truncation point

     k* = max (first race index, first error index)

   is a pure function of the seed list: deterministic for any domain
   count and any interleaving. *)

type pair_state = {
  ps_pair : Site.Pair.t;
  ps_label : string;
  mutable ps_granted : int;  (** trial indices 0..granted-1 exist *)
  mutable ps_queued : int;  (** indices already pushed to a wave queue *)
  mutable ps_slots : Fuzzer.trial option array;  (** length >= granted *)
  mutable ps_first_race : int;  (** max_int = none yet *)
  mutable ps_first_error : int;
  mutable ps_cancelled : int;
  mutable ps_run : int;
  mutable ps_settled : bool;  (** savings already returned to the pool *)
}

let resolution ps =
  if ps.ps_first_race = max_int || ps.ps_first_error = max_int then None
  else Some (max ps.ps_first_race ps.ps_first_error)

let grow ps wanted =
  let len = Array.length ps.ps_slots in
  if wanted > len then begin
    let slots = Array.make (max wanted (2 * len)) None in
    Array.blit ps.ps_slots 0 slots 0 len;
    ps.ps_slots <- slots
  end

(* ------------------------------------------------------------------ *)

let fuzz_pairs ?(domains = 1) ?(seeds = List.init 100 Fun.id) ?(cutoff = false)
    ?budget ?postpone_timeout ?(max_steps = Rf_runtime.Engine.default_config.max_steps)
    ?(log = Event_log.null ()) ~(program : Fuzzer.program) (pairs : Site.Pair.t list) :
    Fuzzer.pair_result list * stats =
  let t0 = Unix.gettimeofday () in
  let npairs = List.length pairs in
  let base_seeds = Array.of_list seeds in
  let nbase = Array.length base_seeds in
  (* Extra trials past the base list draw fresh seeds above its maximum,
     so reallocated budget never re-runs a base seed. *)
  let extra_seed_base = 1 + Array.fold_left max 0 base_seeds in
  let seed_of idx = if idx < nbase then base_seeds.(idx) else extra_seed_base + (idx - nbase) in
  let total_budget =
    match budget with Some b -> max 0 b | None -> npairs * nbase
  in
  Event_log.emit log
    (Event_log.Campaign_started { domains; base_trials = nbase; budget; cutoff });
  let states =
    Array.of_list
      (List.map
         (fun pair ->
           {
             ps_pair = pair;
             ps_label = Site.Pair.to_string pair;
             ps_granted = 0;
             ps_queued = 0;
             ps_slots = Array.make (max nbase 1) None;
             ps_first_race = max_int;
             ps_first_error = max_int;
             ps_cancelled = 0;
             ps_run = 0;
             ps_settled = false;
           })
         pairs)
  in
  (* Initial grant: the first [total_budget] tasks in seed-major order,
     i.e. pair i receives q + 1 trials if i < r else q, where
     total_budget = q * npairs + r — capped at the base list length. *)
  let pool = ref total_budget in
  if npairs > 0 then begin
    let q = total_budget / npairs and r = total_budget mod npairs in
    Array.iteri
      (fun i ps ->
        let g = min nbase (q + if i < r then 1 else 0) in
        grow ps g;
        ps.ps_granted <- g;
        pool := !pool - g)
      states
  end;
  let mutex = Mutex.create () in
  let ndomains = max 1 domains in
  let domain_trials = Array.make ndomains 0 in
  let domain_busy = Array.make ndomains 0.0 in
  let worker d queue =
    let rec loop () =
      match Work_queue.pop queue with
      | None -> ()
      | Some (idx, p) ->
          let ps = states.(p) in
          let cancelled =
            cutoff
            && Mutex.protect mutex (fun () ->
                   match resolution ps with
                   | Some k when idx > k ->
                       ps.ps_cancelled <- ps.ps_cancelled + 1;
                       true
                   | _ -> false)
          in
          if not cancelled then begin
            let seed = seed_of idx in
            Event_log.emit log
              (Event_log.Trial_started { pair = ps.ps_label; seed; domain = d });
            let w0 = Unix.gettimeofday () in
            let tr = Fuzzer.run_trial ?postpone_timeout ~max_steps ~program ps.ps_pair seed in
            let wall = Unix.gettimeofday () -. w0 in
            domain_trials.(d) <- domain_trials.(d) + 1;
            domain_busy.(d) <- domain_busy.(d) +. wall;
            let race = Algo.race_created tr.Fuzzer.t_report in
            let error = race && Outcome.has_exception tr.Fuzzer.t_outcome in
            let deadlock = Outcome.deadlocked tr.Fuzzer.t_outcome in
            let newly_resolved =
              Mutex.protect mutex (fun () ->
                  ps.ps_slots.(idx) <- Some tr;
                  ps.ps_run <- ps.ps_run + 1;
                  let before = resolution ps in
                  if race && idx < ps.ps_first_race then ps.ps_first_race <- idx;
                  if error && idx < ps.ps_first_error then ps.ps_first_error <- idx;
                  match (before, resolution ps) with None, Some k -> Some k | _ -> None)
            in
            Event_log.emit log
              (Event_log.Trial_finished
                 { pair = ps.ps_label; seed; domain = d; race; error; deadlock; wall });
            Option.iter
              (fun k ->
                Event_log.emit log
                  (Event_log.Pair_resolved { pair = ps.ps_label; at_trial = k }))
              newly_resolved
          end;
          loop ()
    in
    loop ()
  in
  let run_wave wave tasks =
    Event_log.emit log (Event_log.Wave_started { wave; tasks = List.length tasks });
    let queue = Work_queue.create tasks in
    let n = max 1 (min ndomains (List.length tasks)) in
    if n = 1 then worker 0 queue
    else begin
      let doms =
        Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) queue))
      in
      worker 0 queue;
      Array.iter Domain.join doms
    end
  in
  (* Wave loop.  Each wave queues every granted-but-unqueued trial in
     seed-major order (trial 0 of every pair, then trial 1, ...) so all
     pairs make progress toward their resolution points together.  Between
     waves — a deterministic barrier — resolved pairs return their unused
     budget to the pool, which is re-granted round-robin to unresolved
     pairs.  Grants depend only on resolution points, which are themselves
     deterministic, so the whole schedule of waves is reproducible. *)
  let waves = ref 0 in
  let continue_ = ref (npairs > 0 && total_budget > 0) in
  while !continue_ do
    let tasks = ref [] in
    Array.iteri
      (fun p ps ->
        for idx = ps.ps_queued to ps.ps_granted - 1 do
          tasks := (idx, p) :: !tasks
        done;
        ps.ps_queued <- ps.ps_granted)
      states;
    let tasks =
      List.sort
        (fun (i1, p1) (i2, p2) ->
          match Int.compare i1 i2 with 0 -> Int.compare p1 p2 | c -> c)
        !tasks
    in
    if tasks <> [] then begin
      run_wave !waves tasks;
      incr waves
    end;
    (* settle pairs that resolved: their skipped trials refill the pool *)
    Array.iter
      (fun ps ->
        if (not ps.ps_settled) && resolution ps <> None then begin
          ps.ps_settled <- true;
          pool := !pool + ps.ps_cancelled
        end)
      states;
    let unresolved =
      Array.to_list states |> List.filter (fun ps -> not ps.ps_settled)
    in
    if (not cutoff) || !pool <= 0 || unresolved = [] then continue_ := false
    else begin
      (* round-robin reallocation, at most one base-list worth per pair
         per wave so a single unresolved pair cannot absorb a huge pool in
         one indivisible chunk *)
      let granted_now = Array.make (List.length unresolved) 0 in
      let progress = ref true in
      while !pool > 0 && !progress do
        progress := false;
        List.iteri
          (fun i ps ->
            if !pool > 0 && granted_now.(i) < nbase then begin
              grow ps (ps.ps_granted + 1);
              ps.ps_granted <- ps.ps_granted + 1;
              granted_now.(i) <- granted_now.(i) + 1;
              decr pool;
              progress := true
            end)
          unresolved
      done;
      List.iteri
        (fun i ps ->
          if granted_now.(i) > 0 then
            Event_log.emit log
              (Event_log.Budget_granted { pair = ps.ps_label; extra = granted_now.(i) }))
        unresolved;
      continue_ := List.exists (fun ps -> ps.ps_queued < ps.ps_granted) unresolved
    end
  done;
  (* ---------------------------------------------------------------- *)
  (* Deterministic aggregation: truncate each pair at its resolution
     point, discarding speculative trials run past it.                  *)
  let discarded = ref 0 in
  let results =
    Array.to_list
      (Array.map
         (fun ps ->
           if ps.ps_cancelled > 0 then
             Event_log.emit log
               (Event_log.Trials_cancelled { pair = ps.ps_label; count = ps.ps_cancelled });
           let upto =
             match (if cutoff then resolution ps else None) with
             | Some k -> k + 1
             | None -> ps.ps_granted
           in
           let kept = ref [] in
           for idx = ps.ps_granted - 1 downto 0 do
             match ps.ps_slots.(idx) with
             | None -> ()  (* cancelled slot *)
             | Some tr -> if idx < upto then kept := tr :: !kept else incr discarded
           done;
           let kept = !kept in
           let wall =
             List.fold_left
               (fun acc (t : Fuzzer.trial) -> acc +. t.Fuzzer.t_outcome.Outcome.wall_time)
               0.0 kept
           in
           Fuzzer.aggregate_trials ~pair:ps.ps_pair ~wall kept)
         states)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let trials = Array.fold_left ( + ) 0 domain_trials in
  let cancelled = Array.fold_left (fun acc ps -> acc + ps.ps_cancelled) 0 states in
  let stats =
    {
      s_pairs = npairs;
      s_resolved =
        Array.fold_left (fun acc ps -> if resolution ps <> None then acc + 1 else acc) 0 states;
      s_trials = trials;
      s_cancelled = cancelled;
      s_discarded = !discarded;
      s_waves = !waves;
      s_wall = wall;
      s_phase1_wall = 0.0;
      s_throughput = (if wall > 0.0 then float_of_int trials /. wall else 0.0);
      s_domains = ndomains;
      s_domain_trials = domain_trials;
      s_domain_busy = domain_busy;
    }
  in
  Event_log.emit log
    (Event_log.Campaign_finished
       { wall; trials; cancelled; throughput = stats.s_throughput });
  (results, stats)

(* ------------------------------------------------------------------ *)

let run ?(domains = 1) ?(phase1_seeds = [ 0 ]) ?(seeds_per_pair = List.init 100 Fun.id)
    ?(cutoff = false) ?budget ?postpone_timeout ?max_steps
    ?(log = Event_log.null ()) (program : Fuzzer.program) : result =
  let p1 = Fuzzer.phase1 ~seeds:phase1_seeds ?max_steps program in
  let potential = Fuzzer.potential_pairs p1 in
  Event_log.emit log
    (Event_log.Phase1_finished
       { potential = Site.Pair.Set.cardinal potential; wall = p1.Fuzzer.p1_wall });
  let pairs = Site.Pair.Set.elements potential in
  let results, stats =
    fuzz_pairs ~domains ~seeds:seeds_per_pair ~cutoff ?budget ?postpone_timeout
      ?max_steps ~log ~program pairs
  in
  let collect p =
    List.fold_left
      (fun acc (r : Fuzzer.pair_result) ->
        if p r then Site.Pair.Set.add r.Fuzzer.pr_pair acc else acc)
      Site.Pair.Set.empty results
  in
  let analysis =
    {
      Fuzzer.a_phase1 = p1;
      results;
      real_pairs = collect Fuzzer.is_real;
      error_pairs = collect Fuzzer.is_harmful;
      deadlock_pairs = collect (fun r -> r.Fuzzer.deadlock_trials > 0);
    }
  in
  ({ analysis; stats = { stats with s_phase1_wall = p1.Fuzzer.p1_wall } } : result)

(* ------------------------------------------------------------------ *)
(* Determinism fingerprint                                             *)

let fingerprint (a : Fuzzer.analysis) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_pair_set tag set =
    add "%s:" tag;
    Site.Pair.Set.iter (fun p -> add "%s;" (Site.Pair.to_string p)) set;
    add "\n"
  in
  add_pair_set "potential" (Fuzzer.potential_pairs a.Fuzzer.a_phase1);
  List.iter
    (fun (r : Fuzzer.pair_result) ->
      add "pair %s race=%d err=%d dead=%d n=%d p=%.17g rs=%s es=%s\n"
        (Site.Pair.to_string r.Fuzzer.pr_pair)
        r.Fuzzer.race_trials r.Fuzzer.error_trials r.Fuzzer.deadlock_trials
        (List.length r.Fuzzer.trials)
        r.Fuzzer.probability
        (match r.Fuzzer.race_seed with Some s -> string_of_int s | None -> "-")
        (match r.Fuzzer.error_seed with Some s -> string_of_int s | None -> "-");
      List.iter
        (fun (t : Fuzzer.trial) ->
          let o = t.Fuzzer.t_outcome in
          add "  t%d race=%b exn=%d dead=%b steps=%d sw=%d\n" t.Fuzzer.t_seed
            (Algo.race_created t.Fuzzer.t_report)
            (List.length o.Outcome.exceptions)
            (Outcome.deadlocked o) o.Outcome.steps o.Outcome.switches)
        r.Fuzzer.trials)
    a.Fuzzer.results;
  add_pair_set "real" a.Fuzzer.real_pairs;
  add_pair_set "error" a.Fuzzer.error_pairs;
  add_pair_set "deadlock" a.Fuzzer.deadlock_pairs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let equal_verdicts a b = String.equal (fingerprint a) (fingerprint b)
