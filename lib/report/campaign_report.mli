(** Human-readable rendering of campaign statistics: trial and cutoff
    counters, throughput, and per-domain utilization. *)

val render : Format.formatter -> Rf_campaign.Campaign.stats -> unit
val pp : Format.formatter -> Rf_campaign.Campaign.stats -> unit

val precision : Format.formatter -> Rf_campaign.Campaign.result -> unit
(** The static pre-filter precision table: frontier size, pairs filtered,
    pairs confirmed by phase 2, the (always-zero-when-sound) overlap
    between the two, classification time, and the per-pair filter
    verdicts.  Prints nothing when the campaign ran without a static
    model. *)
