lib/core/atom_fuzzer.mli: Rf_detect Rf_runtime Strategy
