type event =
  | Campaign_started of {
      domains : int;
      base_trials : int;
      budget : int option;
      cutoff : bool;
    }
  | Phase1_finished of { potential : int; wall : float }
  | Wave_started of { wave : int; tasks : int }
  | Trial_started of { pair : string; seed : int; domain : int }
  | Trial_finished of {
      pair : string;
      seed : int;
      domain : int;
      race : bool;
      error : bool;
      deadlock : bool;
      wall : float;
    }
  | Pair_resolved of { pair : string; at_trial : int }
  | Trials_cancelled of { pair : string; count : int }
  | Budget_granted of { pair : string; extra : int }
  | Campaign_finished of {
      wall : float;
      trials : int;
      cancelled : int;
      throughput : float;
    }

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled: no JSON dependency in the toolchain)   *)

type jv = I of int | F of float | S of string | B of bool | Null

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jv_to_string = function
  | I n -> string_of_int n
  | F x -> Printf.sprintf "%.6f" x
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | B b -> if b then "true" else "false"
  | Null -> "null"

let fields_of_event = function
  | Campaign_started { domains; base_trials; budget; cutoff } ->
      ( "campaign_started",
        [
          ("domains", I domains);
          ("base_trials", I base_trials);
          ("budget", (match budget with Some b -> I b | None -> Null));
          ("cutoff", B cutoff);
        ] )
  | Phase1_finished { potential; wall } ->
      ("phase1_finished", [ ("potential", I potential); ("wall", F wall) ])
  | Wave_started { wave; tasks } ->
      ("wave_started", [ ("wave", I wave); ("tasks", I tasks) ])
  | Trial_started { pair; seed; domain } ->
      ("trial_started", [ ("pair", S pair); ("seed", I seed); ("domain", I domain) ])
  | Trial_finished { pair; seed; domain; race; error; deadlock; wall } ->
      ( "trial_finished",
        [
          ("pair", S pair);
          ("seed", I seed);
          ("domain", I domain);
          ("race", B race);
          ("error", B error);
          ("deadlock", B deadlock);
          ("wall", F wall);
        ] )
  | Pair_resolved { pair; at_trial } ->
      ("pair_resolved", [ ("pair", S pair); ("at_trial", I at_trial) ])
  | Trials_cancelled { pair; count } ->
      ("trials_cancelled", [ ("pair", S pair); ("count", I count) ])
  | Budget_granted { pair; extra } ->
      ("budget_granted", [ ("pair", S pair); ("extra", I extra) ])
  | Campaign_finished { wall; trials; cancelled; throughput } ->
      ( "campaign_finished",
        [
          ("wall", F wall);
          ("trials", I trials);
          ("cancelled", I cancelled);
          ("throughput", F throughput);
        ] )

let event_name ev = fst (fields_of_event ev)

let to_json ~seq ~elapsed ev =
  let name, fields = fields_of_event ev in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"seq\":%d,\"t\":%.6f,\"ev\":\"%s\"" seq elapsed name);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k (jv_to_string v)))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = Drop | Lines of out_channel * bool (* close channel on close *) | Memory

type t = {
  mutex : Mutex.t;
  mutable seq : int;
  started : float;
  sink : sink;
  mutable mem : event list;  (** newest first; Memory sink only *)
}

let make sink = { mutex = Mutex.create (); seq = 0; started = Unix.gettimeofday (); sink; mem = [] }
let null () = make Drop
let to_channel oc = make (Lines (oc, false))
let open_file path = make (Lines (open_out path, true))
let memory () = make Memory

let emit t ev =
  match t.sink with
  | Drop -> ()
  | Memory ->
      Mutex.protect t.mutex (fun () ->
          t.seq <- t.seq + 1;
          t.mem <- ev :: t.mem)
  | Lines (oc, _) ->
      Mutex.protect t.mutex (fun () ->
          t.seq <- t.seq + 1;
          let line = to_json ~seq:t.seq ~elapsed:(Unix.gettimeofday () -. t.started) ev in
          output_string oc line;
          output_char oc '\n';
          flush oc)

let events t = Mutex.protect t.mutex (fun () -> List.rev t.mem)

let close t = match t.sink with Lines (oc, true) -> close_out oc | _ -> ()
