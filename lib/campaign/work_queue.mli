(** A domain-safe work queue with a fixed, deterministic item order.

    The queue is filled once at creation and drained concurrently by worker
    domains.  Items come out in exactly the order they were put in — the
    only scheduling freedom is {e which worker} takes each item, never the
    item sequence itself, which is what keeps campaign task dispatch
    reproducible enough to reason about. *)

type 'a t

val create : 'a list -> 'a t

val pop : 'a t -> 'a option
(** Take the next item, or [None] when the queue is exhausted.  Safe to
    call from any domain. *)

val total : 'a t -> int
val remaining : 'a t -> int
