(** The RaceFuzzer scheduling strategy — Algorithms 1 and 2 of the paper.

    Given one candidate racing pair [RaceSet = {s1, s2}], the strategy
    drives a random scheduler that *postpones* any thread about to execute
    a statement of the pair until another thread arrives at the pair with a
    conflicting pending access to the same dynamic location ([Racing],
    Algorithm 2).  At that moment a real race has been created; it is
    recorded as a {!hit} and resolved by a fair coin (Algorithm 1, lines
    11–18), which is how order-dependent errors behind the race surface.

    Liveness devices from §2.2/§4: when every enabled thread is postponed,
    a random one is released and executed; and threads postponed longer
    than the timeout are released (the paper's monitor thread). *)

open Rf_util
open Rf_runtime

(** One created real race. *)
type hit = {
  hit_pair : Site.Pair.t;  (** the RaceSet *)
  hit_sites : Site.t * Site.t;  (** (postponed, arriving) statements *)
  hit_loc : Loc.t;  (** the shared dynamic location *)
  hit_arriving : int;  (** tid that arrived second *)
  hit_postponed : int list;  (** racing postponed tids (several iff all reads) *)
  hit_step : int;
  resolved_arriving : bool;  (** coin flip: arriving thread ran first *)
}

val pp_hit : Format.formatter -> hit -> unit

(** Mutable per-run report the strategy fills in.  [hits] holds one
    record per {e distinct} created race — keyed by (postponed site,
    arriving site, location) — not one per creation: a tight racing loop
    recreates the same race millions of times, and the per-creation cons
    was the dominant allocation of phase 2.  [hit_events] counts every
    creation.  Scheduling never reads [hits], so the deduplication is
    invisible to the schedule and the PRNG stream. *)
type report = {
  mutable hits : hit list;  (** distinct created races, newest first *)
  mutable hit_events : int;  (** every race creation, duplicates included *)
  mutable evictions : int;  (** all-postponed deadlock breaks *)
  mutable timeout_releases : int;  (** livelock-relief releases *)
  mutable postponements : int;
}

val fresh_report : unit -> report
val race_created : report -> bool
val hits : report -> hit list
(** Distinct hits, oldest first. *)

val default_postpone_timeout : int

val strategy :
  ?postpone_timeout:int option ->
  pair:Site.Pair.t ->
  report:report ->
  unit ->
  Strategy.t
(** Build the phase-2 strategy for one run.  [postpone_timeout] is in
    scheduler steps; [None] disables livelock relief (ablation). *)
