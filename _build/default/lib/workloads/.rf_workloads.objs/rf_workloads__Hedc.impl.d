lib/workloads/hedc.ml: Api Common List Printf Rf_runtime Rf_util Site Workload
