lib/workloads/figure2.ml: Api Lock Printf Rf_runtime Rf_util Site Workload
