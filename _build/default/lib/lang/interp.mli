(** RFL interpreter: lowers a checked program onto the instrumented
    runtime.  Shared accesses become {!Rf_runtime.Api} operations whose
    sites carry the source position; [let]-bound locals are plain OCaml
    state, invisible to the scheduler (like locals in the paper's
    3-address-code model).  Loop back-edges and function entries perform
    event-free safepoints so local-only computation cannot starve the
    cooperative scheduler. *)

type value = Vint of int | Vbool of bool | Vstr of string

val pp_value : Format.formatter -> value -> unit

val main_of : ?print:(string -> unit) -> Ast.program -> unit -> unit
(** Allocate globals/locks, fork every declared thread, join them all.
    Must run inside {!Rf_runtime.Engine.run}. *)
