(* Tests for the model JDK collections: sequential semantics against a
   reference model, fail-fast iterator behaviour, synchronized wrappers,
   and the §5.3 bulk-operation bug mechanics. *)

open Rf_runtime
open Rf_collections

(* All collection code must run inside the engine. *)
let in_engine f =
  let result = ref None in
  let o =
    Engine.run
      ~config:{ Engine.default_config with seed = 0 }
      ~strategy:(Strategy.round_robin ())
      (fun () -> result := Some (f ()))
  in
  match (!result, o.Outcome.exceptions) with
  | Some r, [] -> r
  | _, (e : Outcome.exn_report) :: _ ->
      Alcotest.failf "engine run raised %s" (Printexc.to_string e.Outcome.exn_)
  | None, [] -> Alcotest.fail "program did not complete"

(* The five collection constructors under test, as generic Jcoll.t. *)
let mks =
  [
    ("ArrayList", fun () -> Array_list.as_coll (Array_list.create ()));
    ("LinkedList", fun () -> Linked_list.as_coll (Linked_list.create ()));
    ("HashSet", fun () -> Hash_set.as_coll (Hash_set.create ()));
    ("TreeSet", fun () -> Tree_set.as_coll (Tree_set.create ()));
    ("Vector", fun () -> Vector.as_coll (Vector.create ()));
  ]

let is_set name = name = "HashSet" || name = "TreeSet"

(* ------------------------------------------------------------------ *)
(* Sequential semantics                                                *)

let test_add_contains_remove (name, mk) () =
  in_engine (fun () ->
      let c = mk () in
      Alcotest.(check bool) "empty" true (c.Jcoll.is_empty ());
      ignore (c.Jcoll.add 5);
      ignore (c.Jcoll.add 9);
      ignore (c.Jcoll.add 1);
      Alcotest.(check int) (name ^ " size") 3 (c.Jcoll.size ());
      Alcotest.(check bool) "contains 9" true (c.Jcoll.contains 9);
      Alcotest.(check bool) "not contains 7" false (c.Jcoll.contains 7);
      Alcotest.(check bool) "remove 9" true (c.Jcoll.remove 9);
      Alcotest.(check bool) "remove 9 again" false (c.Jcoll.remove 9);
      Alcotest.(check int) "size after remove" 2 (c.Jcoll.size ());
      c.Jcoll.clear ();
      Alcotest.(check int) "clear" 0 (c.Jcoll.size ()))

let test_set_rejects_duplicates (name, mk) () =
  in_engine (fun () ->
      let c = mk () in
      Alcotest.(check bool) "first add" true (c.Jcoll.add 3);
      if is_set name then begin
        Alcotest.(check bool) "duplicate rejected" false (c.Jcoll.add 3);
        Alcotest.(check int) "size 1" 1 (c.Jcoll.size ())
      end
      else begin
        Alcotest.(check bool) "list accepts duplicate" true (c.Jcoll.add 3);
        Alcotest.(check int) "size 2" 2 (c.Jcoll.size ())
      end)

let test_iterator_yields_all (name, mk) () =
  in_engine (fun () ->
      let c = mk () in
      List.iter (fun e -> ignore (c.Jcoll.add e)) [ 4; 2; 8; 6 ];
      let elems = List.sort compare (Jcoll.elements c) in
      Alcotest.(check (list int)) (name ^ " iterates all") [ 2; 4; 6; 8 ] elems)

let test_treeset_sorted_iteration () =
  in_engine (fun () ->
      let t = Tree_set.create () in
      List.iter (fun e -> ignore (Tree_set.add t e)) [ 5; 1; 9; 3; 7; 2 ];
      let c = Tree_set.as_coll t in
      Alcotest.(check (list int)) "in-order" [ 1; 2; 3; 5; 7; 9 ] (Jcoll.elements c))

let test_treeset_remove_shapes () =
  (* exercise all three BST delete cases: leaf, one child, two children *)
  in_engine (fun () ->
      let t = Tree_set.create () in
      List.iter (fun e -> ignore (Tree_set.add t e)) [ 50; 30; 70; 20; 40; 60; 80; 65 ];
      Alcotest.(check bool) "leaf" true (Tree_set.remove t 20);
      Alcotest.(check bool) "one child" true (Tree_set.remove t 60);
      Alcotest.(check bool) "two children" true (Tree_set.remove t 50);
      Alcotest.(check bool) "root two children again" true (Tree_set.remove t 70);
      Alcotest.(check bool) "missing" false (Tree_set.remove t 99);
      Alcotest.(check (list int)) "remaining in order" [ 30; 40; 65; 80 ]
        (Tree_set.to_list_dbg t))

let test_arraylist_positional () =
  in_engine (fun () ->
      let a = Array_list.create ~capacity:2 () in
      for i = 0 to 9 do
        ignore (Array_list.add a (i * 2))
      done;
      (* growth beyond initial capacity *)
      Alcotest.(check int) "size" 10 (Array_list.size a);
      Alcotest.(check int) "get 7" 14 (Array_list.get a 7);
      ignore (Array_list.set a 3 99);
      Alcotest.(check int) "set/get" 99 (Array_list.get a 3);
      Alcotest.(check int) "index_of" 3 (Array_list.index_of a 99);
      Alcotest.(check int) "remove_at" 99 (Array_list.remove_at a 3);
      Alcotest.(check int) "size after remove" 9 (Array_list.size a);
      Alcotest.(check bool) "oob get" true
        (try
           ignore (Array_list.get a 50);
           false
         with Jcoll.No_such_element _ -> true))

let test_linkedlist_ends () =
  in_engine (fun () ->
      let l = Linked_list.create () in
      ignore (Linked_list.add l 2);
      Linked_list.add_first l 1;
      ignore (Linked_list.add l 3);
      Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Linked_list.to_list_dbg l);
      Alcotest.(check int) "removeFirst" 1 (Linked_list.remove_first l);
      Alcotest.(check int) "get 1" 3 (Linked_list.get l 1);
      Alcotest.(check bool) "empty removeFirst raises" true
        (try
           ignore (Linked_list.remove_first (Linked_list.create ()));
           false
         with Jcoll.No_such_element _ -> true))

let test_hashset_many_buckets () =
  in_engine (fun () ->
      let h = Hash_set.create ~nbuckets:4 () in
      for i = 0 to 49 do
        ignore (Hash_set.add h i)
      done;
      Alcotest.(check int) "size 50" 50 (Hash_set.size h);
      for i = 0 to 49 do
        Alcotest.(check bool) "mem" true (Hash_set.contains h i)
      done;
      for i = 0 to 24 do
        ignore (Hash_set.remove h (2 * i))
      done;
      Alcotest.(check int) "odd half" 25 (Hash_set.size h);
      Alcotest.(check bool) "no evens" false (Hash_set.contains h 10))

let test_vector_basics () =
  in_engine (fun () ->
      let v = Vector.create ~capacity:2 () in
      for i = 1 to 6 do
        ignore (Vector.add v (i * 11))
      done;
      Alcotest.(check int) "size" 6 (Vector.size v);
      Alcotest.(check int) "get" 33 (Vector.get v 2);
      Vector.set_element_at v 2 7;
      Alcotest.(check int) "setElementAt" 7 (Vector.get v 2);
      Alcotest.(check bool) "remove" true (Vector.remove v 7);
      Alcotest.(check int) "size" 5 (Vector.size v);
      let dst = Array.make 10 0 in
      Alcotest.(check int) "copyInto count" 5 (Vector.copy_into v dst);
      Alcotest.(check int) "copied" 11 dst.(0))

(* ------------------------------------------------------------------ *)
(* Fail-fast iterators                                                 *)

let test_fail_fast (name, mk) () =
  in_engine (fun () ->
      let c = mk () in
      List.iter (fun e -> ignore (c.Jcoll.add e)) [ 1; 2; 3 ];
      let it = c.Jcoll.iterator () in
      ignore (it.Jcoll.next ());
      ignore (c.Jcoll.add 42);
      (* structural modification bumps modCount *)
      if name <> "Vector" then
        Alcotest.(check bool) (name ^ " iterator fails fast") true
          (try
             ignore (it.Jcoll.next ());
             false
           with Jcoll.Concurrent_modification _ -> true)
      else
        (* JDK 1.1 Enumeration is NOT fail-fast *)
        Alcotest.(check bool) "vector enumeration tolerates mutation" true
          (try
             ignore (it.Jcoll.next ());
             true
           with _ -> false))

let test_iterator_next_past_end (_, mk) () =
  in_engine (fun () ->
      let c = mk () in
      ignore (c.Jcoll.add 1);
      let it = c.Jcoll.iterator () in
      ignore (it.Jcoll.next ());
      Alcotest.(check bool) "exhausted" false (it.Jcoll.has_next ());
      Alcotest.(check bool) "NSE past end" true
        (try
           ignore (it.Jcoll.next ());
           false
         with Jcoll.No_such_element _ -> true))

(* ------------------------------------------------------------------ *)
(* Bulk operations and wrappers                                        *)

let test_bulk_operations (name, mk) () =
  in_engine (fun () ->
      let c1 = mk () and c2 = mk () in
      List.iter (fun e -> ignore (c1.Jcoll.add e)) [ 1; 2; 3; 4 ];
      List.iter (fun e -> ignore (c2.Jcoll.add e)) [ 2; 4 ];
      Alcotest.(check bool) (name ^ " containsAll yes") true (Jcoll.contains_all c1 c2);
      Alcotest.(check bool) "containsAll no" false (Jcoll.contains_all c2 c1);
      ignore (Jcoll.remove_all c1 c2);
      Alcotest.(check (list int)) "removeAll" [ 1; 3 ]
        (List.sort compare (c1.Jcoll.to_list_dbg ()));
      ignore (Jcoll.add_all c1 c2);
      Alcotest.(check int) "addAll" 4 (c1.Jcoll.size ()))

let test_equals_lists () =
  in_engine (fun () ->
      let mk l =
        let c = Array_list.as_coll (Array_list.create ()) in
        List.iter (fun e -> ignore (c.Jcoll.add e)) l;
        c
      in
      Alcotest.(check bool) "equal" true (Jcoll.equals (mk [ 1; 2 ]) (mk [ 1; 2 ]));
      Alcotest.(check bool) "diff value" false (Jcoll.equals (mk [ 1; 2 ]) (mk [ 1; 3 ]));
      Alcotest.(check bool) "diff length" false (Jcoll.equals (mk [ 1 ]) (mk [ 1; 2 ])))

let test_synchronized_wrapper_semantics (name, mk) () =
  in_engine (fun () ->
      let c = Collections.synchronized (mk ()) in
      Alcotest.(check bool) "marked synchronized" true c.Jcoll.synchronized;
      Alcotest.(check string) "name prefixed" ("Synchronized" ^ name) c.Jcoll.cname;
      ignore (c.Jcoll.add 1);
      ignore (c.Jcoll.add 2);
      Alcotest.(check int) "size through wrapper" 2 (c.Jcoll.size ());
      Alcotest.(check bool) "contains" true (c.Jcoll.contains 2);
      let elems = List.sort compare (Jcoll.elements c) in
      Alcotest.(check (list int)) "iterate through wrapper" [ 1; 2 ] elems)

let test_wrapper_mutex_protects () =
  (* concurrent adds through the wrapper never corrupt size *)
  for seed = 0 to 14 do
    let sizes =
      let got = ref (-1) in
      let o =
        Engine.run
          ~config:{ Engine.default_config with seed }
          ~strategy:(Strategy.random ())
          (fun () ->
            let c =
              Collections.synchronized (Array_list.as_coll (Array_list.create ()))
            in
            let hs =
              List.init 3 (fun w ->
                  Api.fork ~name:(Printf.sprintf "adder%d" w) (fun () ->
                      for i = 0 to 4 do
                        ignore (c.Jcoll.add ((10 * w) + i))
                      done))
            in
            List.iter Api.join hs;
            got := c.Jcoll.size ())
      in
      Alcotest.(check bool) "no exception" true (o.Outcome.exceptions = []);
      !got
    in
    Alcotest.(check int) (Printf.sprintf "15 adds survive (seed %d)" seed) 15 sizes
  done

(* ------------------------------------------------------------------ *)
(* QCheck: sequential behaviour matches a reference model              *)

type op = Add of int | Remove of int | Contains of int | Clear

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun n -> Add (n mod 20)) small_nat);
        (3, map (fun n -> Remove (n mod 20)) small_nat);
        (2, map (fun n -> Contains (n mod 20)) small_nat);
        (1, return Clear);
      ])

let show_op = function
  | Add n -> Printf.sprintf "add %d" n
  | Remove n -> Printf.sprintf "remove %d" n
  | Contains n -> Printf.sprintf "contains %d" n
  | Clear -> "clear"

let arb_ops = QCheck.make ~print:(fun l -> String.concat ";" (List.map show_op l))
    QCheck.Gen.(small_list gen_op)

(* reference: sorted int list without duplicates (set) / multiset (list) *)
let model_apply ~is_set ops =
  let apply model = function
    | Add n ->
        if is_set && List.mem n model then model
        else model @ [ n ]
    | Remove n ->
        let rec drop = function
          | [] -> []
          | x :: rest -> if x = n then rest else x :: drop rest
        in
        drop model
    | Contains _ -> model
    | Clear -> []
  in
  List.fold_left apply [] ops

let prop_matches_model (name, mk) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s matches reference model" name)
    ~count:60 arb_ops
    (fun ops ->
      let expected = List.sort compare (model_apply ~is_set:(is_set name) ops) in
      let actual =
        in_engine (fun () ->
            let c = mk () in
            List.iter
              (function
                | Add n -> ignore (c.Jcoll.add n)
                | Remove n -> ignore (c.Jcoll.remove n)
                | Contains n -> ignore (c.Jcoll.contains n)
                | Clear -> c.Jcoll.clear ())
              ops;
            List.sort compare (c.Jcoll.to_list_dbg ()))
      in
      expected = actual)

let prop_contains_agrees (name, mk) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s contains agrees with model" name)
    ~count:60
    QCheck.(pair arb_ops (int_range 0 19))
    (fun (ops, probe) ->
      let model = model_apply ~is_set:(is_set name) ops in
      let expected = List.mem probe model in
      let actual =
        in_engine (fun () ->
            let c = mk () in
            List.iter
              (function
                | Add n -> ignore (c.Jcoll.add n)
                | Remove n -> ignore (c.Jcoll.remove n)
                | Contains n -> ignore (c.Jcoll.contains n)
                | Clear -> c.Jcoll.clear ())
              ops;
            c.Jcoll.contains probe)
      in
      expected = actual)

let () =
  let per_coll mk_case = List.map mk_case mks in
  Alcotest.run "rf_collections"
    [
      ( "semantics",
        per_coll (fun (name, mk) ->
            Alcotest.test_case (name ^ " add/contains/remove") `Quick
              (test_add_contains_remove (name, mk)))
        @ per_coll (fun (name, mk) ->
              Alcotest.test_case (name ^ " duplicates") `Quick
                (test_set_rejects_duplicates (name, mk)))
        @ per_coll (fun (name, mk) ->
              Alcotest.test_case (name ^ " iterator all") `Quick
                (test_iterator_yields_all (name, mk)))
        @ [
            Alcotest.test_case "TreeSet sorted" `Quick test_treeset_sorted_iteration;
            Alcotest.test_case "TreeSet deletes" `Quick test_treeset_remove_shapes;
            Alcotest.test_case "ArrayList positional" `Quick test_arraylist_positional;
            Alcotest.test_case "LinkedList ends" `Quick test_linkedlist_ends;
            Alcotest.test_case "HashSet buckets" `Quick test_hashset_many_buckets;
            Alcotest.test_case "Vector basics" `Quick test_vector_basics;
          ] );
      ( "iterators",
        per_coll (fun (name, mk) ->
            Alcotest.test_case (name ^ " fail-fast") `Quick (test_fail_fast (name, mk)))
        @ per_coll (fun (name, mk) ->
              Alcotest.test_case (name ^ " past end") `Quick
                (test_iterator_next_past_end (name, mk))) );
      ( "bulk",
        per_coll (fun (name, mk) ->
            Alcotest.test_case (name ^ " bulk ops") `Quick
              (test_bulk_operations (name, mk)))
        @ [ Alcotest.test_case "equals" `Quick test_equals_lists ] );
      ( "wrappers",
        per_coll (fun (name, mk) ->
            Alcotest.test_case (name ^ " synchronized") `Quick
              (test_synchronized_wrapper_semantics (name, mk)))
        @ [ Alcotest.test_case "mutex protects" `Quick test_wrapper_mutex_protects ] );
      ( "model-props",
        List.map QCheck_alcotest.to_alcotest
          (List.map prop_matches_model mks @ List.map prop_contains_agrees mks) );
    ]
