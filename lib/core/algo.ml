(** The RaceFuzzer scheduling strategy — Algorithms 1 and 2 of the paper.

    Given a candidate racing pair [RaceSet = {s1, s2}] from phase 1, the
    strategy drives a random scheduler with one twist: a thread about to
    execute a statement of the pair is *postponed* — parked with its
    operation pending — until some other thread arrives at a statement of
    the pair whose pending access touches the same dynamic memory location
    with at least one write ([Racing], Algorithm 2).  At that moment a
    *real race* has been created: the two accesses are temporally adjacent
    and unordered.  The strategy records the hit and resolves the race by a
    coin flip (Algorithm 1, lines 11–18): either the arriving thread runs
    first, or every postponed racing thread runs first — which is how
    order-dependent errors hiding behind the race get exposed.

    Two liveness devices from the paper's §2.2 and §4:

    - when every enabled thread is postponed, a random postponed thread is
      released and executed ("if we manage to postpone all the threads,
      then we pick a random thread from the set to break the deadlock");
    - a postpone timeout models the monitor thread that "periodically
      removes those threads from the postponed set that are waiting for a
      long time", preventing livelock when one thread spins without
      synchronizing. *)

open Rf_util
open Rf_runtime

(** One created real race. *)
type hit = {
  hit_pair : Site.Pair.t;  (** the RaceSet *)
  hit_sites : Site.t * Site.t;  (** postponed site, arriving site *)
  hit_loc : Loc.t;  (** the shared dynamic location *)
  hit_arriving : int;  (** tid that arrived second *)
  hit_postponed : int list;  (** racing postponed tids (>1 when all reads... ) *)
  hit_step : int;
  resolved_arriving : bool;  (** coin flip: arriving thread executed first *)
}

let pp_hit ppf h =
  Fmt.pf ppf "REAL RACE %a on %a at step %d (t%d vs %a), resolved toward %s"
    Site.Pair.pp h.hit_pair Loc.pp h.hit_loc h.hit_step h.hit_arriving
    (Fmt.list ~sep:Fmt.comma (fun ppf t -> Fmt.pf ppf "t%d" t))
    h.hit_postponed
    (if h.resolved_arriving then "arriving" else "postponed")

(** Mutable per-run report the strategy writes into.

    [hits] is deduplicated by (sites, location): a tight racing loop
    creates the same race millions of times per run, and consing a hit
    record for each was the dominant allocation of the whole phase-2
    path (hundreds of thousands of retained records per trial on the
    access-heavy benchmark).  Scheduling decisions never read [hits], so
    deduplication cannot perturb the schedule; [hit_events] keeps the
    raw creation count for reporting. *)
type report = {
  mutable hits : hit list;  (** distinct created races, newest first *)
  mutable hit_events : int;  (** every race creation, duplicates included *)
  mutable evictions : int;  (** all-postponed deadlock breaks *)
  mutable timeout_releases : int;  (** livelock-relief releases *)
  mutable postponements : int;
}

let fresh_report () =
  {
    hits = [];
    hit_events = 0;
    evictions = 0;
    timeout_releases = 0;
    postponements = 0;
  }

let race_created r = r.hits <> []
let hits r = List.rev r.hits

(** Default bound (in scheduler steps) a thread may stay postponed. *)
let default_postpone_timeout = 2_000

(** [Racing (s, t, postponed)] — Algorithm 2: the postponed threads whose
    pending access conflicts with [m] (same dynamic location, at least one
    write).  Postponed threads are always parked at a [RaceSet] memory
    operation, so no site check is needed here, mirroring the paper. *)
let racing (m : Op.mem) is_postponed (enabled : Strategy.entry list) =
  List.filter
    (fun (e : Strategy.entry) ->
      is_postponed e.Strategy.tid
      &&
      match Op.pend_mem e.Strategy.pend with
      | Some m' ->
          Loc.equal m.Op.loc m'.Op.loc
          && (m.Op.access = Rf_events.Event.Write
             || m'.Op.access = Rf_events.Event.Write)
      | None -> false)
    enabled

(** Build the strategy for one run.

    [pair] is the RaceSet; [report] collects hits; [postpone_timeout]
    bounds how long (in engine steps, the [view.step] clock — not strategy
    consultations, which advance more slowly under [`Sync_and] fast paths)
    a thread may stay postponed, [None] disabling relief (ablation). *)
let strategy ?(postpone_timeout = Some default_postpone_timeout) ~pair ~report () :
    Strategy.t =
  (* tid -> step at which it was postponed; -1 = not postponed.  A flat
     array (plus a live count) instead of a hashtable: the [Racing] scan
     probes membership for every enabled thread on every consultation of
     the racing hot loop, so membership must be an array read. *)
  let p_since = ref (Array.make 16 (-1)) in
  let p_count = ref 0 in
  let ensure tid =
    let n = Array.length !p_since in
    if tid >= n then begin
      let a = Array.make (max (tid + 1) (2 * n)) (-1) in
      Array.blit !p_since 0 a 0 n;
      p_since := a
    end
  in
  let is_postponed tid = tid < Array.length !p_since && !p_since.(tid) >= 0 in
  let postpone tid step =
    ensure tid;
    if !p_since.(tid) < 0 then incr p_count;
    !p_since.(tid) <- step
  in
  let release tid =
    if is_postponed tid then begin
      !p_since.(tid) <- -1;
      decr p_count
    end
  in
  (* (postponed site id, arriving site id) -> locations already recorded:
     only the first creation of a distinct race conses a hit.  The
     location list is scanned with [Loc.equal] so the per-creation check
     never polymorphic-hashes a location. *)
  let recorded : (int * int, Loc.t list ref) Hashtbl.t = Hashtbl.create 8 in
  (* threads that must execute next (race resolved toward them, or evicted
     to break an all-postponed deadlock) *)
  let queue : int list ref = ref [] in
  let choose (view : Strategy.view) =
    (* Livelock relief: free threads postponed for too long.  The array
       scan runs in tid order — the same order the hashtable version
       produced by sorting — so any future PRNG consumption stays a
       function of the run state alone. *)
    (match postpone_timeout with
    | None -> ()
    | Some bound ->
        if !p_count > 0 then
          Array.iteri
            (fun tid since ->
              if since >= 0 && view.step - since > bound then begin
                release tid;
                report.timeout_releases <- report.timeout_releases + 1
              end)
            !p_since);
    (* Serve the must-run queue first (Algorithm 1 line 16: execute all
       threads of R). *)
    let rec from_queue () =
      match !queue with
      | [] -> None
      | tid :: rest ->
          queue := rest;
          if List.exists (fun (e : Strategy.entry) -> e.tid = tid) view.enabled then
            Some tid
          else from_queue ()
    in
    match from_queue () with
    | Some tid -> tid
    | None ->
        let rec pick_loop () =
          let avail =
            (* nothing postponed (the common case off the racing loop):
               the filter would copy [enabled] verbatim — skip it *)
            if !p_count = 0 then view.enabled
            else
              List.filter
                (fun (e : Strategy.entry) -> not (is_postponed e.tid))
                view.enabled
          in
          match avail with
          | [] ->
              (* Everyone enabled is postponed: break the scheduler deadlock
                 by releasing and *executing* a random postponed thread. *)
              let victims =
                List.filter
                  (fun (e : Strategy.entry) -> is_postponed e.tid)
                  view.enabled
              in
              let v = Prng.pick view.prng victims in
              release v.Strategy.tid;
              report.evictions <- report.evictions + 1;
              v.Strategy.tid
          | _ -> (
              let e = Prng.pick view.prng avail in
              match Op.pend_mem e.Strategy.pend with
              | Some m when Site.Pair.mem m.Op.site pair -> (
                  match racing m is_postponed view.enabled with
                  | [] ->
                      (* No racing partner parked yet: wait for one. *)
                      postpone e.Strategy.tid view.step;
                      report.postponements <- report.postponements + 1;
                      pick_loop ()
                  | r ->
                      (* Real race created. Record and resolve randomly. *)
                      let first = List.hd r in
                      let postponed_site =
                        match Op.pend_mem first.Strategy.pend with
                        | Some m' -> m'.Op.site
                        | None -> m.Op.site
                      in
                      let toward_arriving = Prng.bool view.prng in
                      report.hit_events <- report.hit_events + 1;
                      let key = (Site.id postponed_site, Site.id m.Op.site) in
                      let locs =
                        match Hashtbl.find_opt recorded key with
                        | Some l -> l
                        | None ->
                            let l = ref [] in
                            Hashtbl.add recorded key l;
                            l
                      in
                      if not (List.exists (Loc.equal m.Op.loc) !locs) then begin
                        locs := m.Op.loc :: !locs;
                        report.hits <-
                          {
                            hit_pair = pair;
                            hit_sites = (postponed_site, m.Op.site);
                            hit_loc = m.Op.loc;
                            hit_arriving = e.Strategy.tid;
                            hit_postponed =
                              List.map (fun (x : Strategy.entry) -> x.tid) r;
                            hit_step = view.step;
                            resolved_arriving = toward_arriving;
                          }
                          :: report.hits
                      end;
                      if toward_arriving then
                        (* arriving thread executes; R stays postponed *)
                        e.Strategy.tid
                      else begin
                        (* postponed side executes (all of R); arriving
                           thread is postponed in its place *)
                        postpone e.Strategy.tid view.step;
                        report.postponements <- report.postponements + 1;
                        List.iter
                          (fun (x : Strategy.entry) -> release x.tid)
                          r;
                        let tids = List.map (fun (x : Strategy.entry) -> x.tid) r in
                        queue := List.tl tids;
                        List.hd tids
                      end)
              | _ -> e.Strategy.tid)
        in
        pick_loop ()
  in
  Strategy.make ~name:"racefuzzer" choose
