(* Tests for rf_util: PRNG determinism/distribution, site interning,
   location identity. *)

open Rf_util

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 10 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "different streams differ" false (xs = ys)

let test_prng_int_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let n = Prng.int p 13 in
    Alcotest.(check bool) "0 <= n" true (n >= 0);
    Alcotest.(check bool) "n < 13" true (n < 13)
  done

let test_prng_int_invalid () =
  let p = Prng.create 0 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_prng_bool_both_values () =
  let p = Prng.create 3 in
  let trues = ref 0 and falses = ref 0 in
  for _ = 1 to 200 do
    if Prng.bool p then incr trues else incr falses
  done;
  Alcotest.(check bool) "some trues" true (!trues > 30);
  Alcotest.(check bool) "some falses" true (!falses > 30)

let test_prng_float_range () =
  let p = Prng.create 9 in
  for _ = 1 to 1000 do
    let f = Prng.float p in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_copy_independent () =
  let p = Prng.create 5 in
  ignore (Prng.next_int64 p);
  let q = Prng.copy p in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 p)
    (Prng.next_int64 q)

let test_prng_split_diverges () =
  let p = Prng.create 11 in
  let q = Prng.split p in
  let xs = List.init 5 (fun _ -> Prng.next_int64 p) in
  let ys = List.init 5 (fun _ -> Prng.next_int64 q) in
  Alcotest.(check bool) "split stream differs" false (xs = ys)

let test_prng_pick () =
  let p = Prng.create 13 in
  let l = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "pick from list" true (List.mem (Prng.pick p l) l)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick p []))

let test_prng_shuffle_permutation () =
  let p = Prng.create 17 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* Uniformity property: counts of Prng.int over [0,4) are roughly equal. *)
let test_prng_rough_uniformity () =
  let p = Prng.create 23 in
  let counts = Array.make 4 0 in
  let n = 4000 in
  for _ = 1 to n do
    let i = Prng.int p 4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket count %d close to %d" c (n / 4))
        true
        (abs (c - (n / 4)) < n / 10))
    counts

(* ------------------------------------------------------------------ *)
(* Site                                                                *)

let test_site_interning () =
  let a = Site.make ~file:"f.rfl" ~line:3 "x=1" in
  let b = Site.make ~file:"f.rfl" ~line:3 "x=1" in
  Alcotest.(check bool) "same key interned" true (Site.equal a b);
  Alcotest.(check int) "same id" (Site.id a) (Site.id b)

let test_site_distinct () =
  let a = Site.make ~file:"f.rfl" ~line:3 "x=1" in
  let b = Site.make ~file:"f.rfl" ~line:4 "x=1" in
  Alcotest.(check bool) "different lines distinct" false (Site.equal a b)

let test_site_find_by_id () =
  let a = Site.make ~file:"g.rfl" ~line:9 "y=2" in
  match Site.find_by_id (Site.id a) with
  | Some b -> Alcotest.(check bool) "roundtrip" true (Site.equal a b)
  | None -> Alcotest.fail "site not found by id"

let test_site_pair_normalized () =
  let a = Site.make ~file:"p.rfl" ~line:1 "a" in
  let b = Site.make ~file:"p.rfl" ~line:2 "b" in
  let p1 = Site.Pair.make a b and p2 = Site.Pair.make b a in
  Alcotest.(check bool) "unordered equal" true (Site.Pair.equal p1 p2);
  Alcotest.(check int) "normalized fst" (Site.id (Site.Pair.fst p1))
    (Site.id (Site.Pair.fst p2))

let test_site_pair_reflexive () =
  let a = Site.make ~file:"p.rfl" ~line:7 "self" in
  let p = Site.Pair.make a a in
  Alcotest.(check bool) "mem" true (Site.Pair.mem a p);
  match Site.Pair.other a p with
  | Some b -> Alcotest.(check bool) "other of reflexive" true (Site.equal a b)
  | None -> Alcotest.fail "other none"

let test_site_pair_other () =
  let a = Site.make ~file:"p.rfl" ~line:10 "a" in
  let b = Site.make ~file:"p.rfl" ~line:11 "b" in
  let c = Site.make ~file:"p.rfl" ~line:12 "c" in
  let p = Site.Pair.make a b in
  (match Site.Pair.other a p with
  | Some x -> Alcotest.(check bool) "other a = b" true (Site.equal x b)
  | None -> Alcotest.fail "other none");
  Alcotest.(check bool) "c not in pair" false (Site.Pair.mem c p);
  Alcotest.(check bool) "other c none" true (Site.Pair.other c p = None)

(* ------------------------------------------------------------------ *)
(* Loc                                                                 *)

let test_loc_identity () =
  Loc.reset_counter ();
  let o1 = Loc.fresh_obj () and o2 = Loc.fresh_obj () in
  Alcotest.(check bool) "fresh objects distinct" false (o1 = o2);
  Alcotest.(check bool) "same field same loc" true
    (Loc.equal (Loc.field o1 "f") (Loc.field o1 "f"));
  Alcotest.(check bool) "diff field diff loc" false
    (Loc.equal (Loc.field o1 "f") (Loc.field o1 "g"));
  Alcotest.(check bool) "diff obj diff loc" false
    (Loc.equal (Loc.field o1 "f") (Loc.field o2 "f"))

let test_loc_reset_determinism () =
  Loc.reset_counter ();
  let a = Loc.fresh_obj () in
  Loc.reset_counter ();
  let b = Loc.fresh_obj () in
  Alcotest.(check int) "counter reset" a b

let test_loc_kinds_distinct () =
  let g = Loc.global "x" and f = Loc.field 0 "x" and e = Loc.elem 0 0 in
  Alcotest.(check bool) "global/field" false (Loc.equal g f);
  Alcotest.(check bool) "field/elem" false (Loc.equal f e);
  Alcotest.(check bool) "elem identity" true (Loc.equal e (Loc.elem 0 0));
  Alcotest.(check bool) "elem index" false (Loc.equal e (Loc.elem 0 1))

let test_loc_compare_consistent () =
  let locs = [ Loc.global "a"; Loc.global "b"; Loc.field 1 "f"; Loc.elem 2 3 ] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let c = Loc.compare x y in
          Alcotest.(check bool) "equal iff compare 0" (Loc.equal x y) (c = 0);
          Alcotest.(check int) "antisymmetric" (-c) (Loc.compare y x))
        locs)
    locs

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"prng int always in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let n = Prng.int p bound in
      n >= 0 && n < bound)

let prop_site_pair_commutative =
  QCheck.Test.make ~name:"site pair construction commutative" ~count:200
    QCheck.(pair small_int small_int)
    (fun (i, j) ->
      let a = Site.make ~file:"q.rfl" ~line:(i mod 50) "s" in
      let b = Site.make ~file:"q.rfl" ~line:(j mod 50) "s" in
      Site.Pair.equal (Site.Pair.make a b) (Site.Pair.make b a))

let () =
  Alcotest.run "rf_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "bool both values" `Quick test_prng_bool_both_values;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "rough uniformity" `Quick test_prng_rough_uniformity;
          QCheck_alcotest.to_alcotest prop_prng_int_in_range;
        ] );
      ( "site",
        [
          Alcotest.test_case "interning" `Quick test_site_interning;
          Alcotest.test_case "distinct" `Quick test_site_distinct;
          Alcotest.test_case "find by id" `Quick test_site_find_by_id;
          Alcotest.test_case "pair normalized" `Quick test_site_pair_normalized;
          Alcotest.test_case "pair reflexive" `Quick test_site_pair_reflexive;
          Alcotest.test_case "pair other/mem" `Quick test_site_pair_other;
          QCheck_alcotest.to_alcotest prop_site_pair_commutative;
        ] );
      ( "loc",
        [
          Alcotest.test_case "identity" `Quick test_loc_identity;
          Alcotest.test_case "reset determinism" `Quick test_loc_reset_determinism;
          Alcotest.test_case "kinds distinct" `Quick test_loc_kinds_distinct;
          Alcotest.test_case "compare consistent" `Quick test_loc_compare_consistent;
        ] );
    ]
