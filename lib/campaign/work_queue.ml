type 'a t = {
  mutex : Mutex.t;
  items : 'a array;  (* base tasks, fixed deterministic order *)
  mutable next : int;
  mutable requeued : 'a list;  (* recovered tasks; drained before [items] *)
  mutable closed : bool;
}

let create items =
  {
    mutex = Mutex.create ();
    items = Array.of_list items;
    next = 0;
    requeued = [];
    closed = false;
  }

let pop t =
  Mutex.protect t.mutex (fun () ->
      if t.closed then None
      else
        match t.requeued with
        | x :: rest ->
            t.requeued <- rest;
            Some x
        | [] ->
            if t.next >= Array.length t.items then None
            else begin
              let x = t.items.(t.next) in
              t.next <- t.next + 1;
              Some x
            end)

let requeue t x = Mutex.protect t.mutex (fun () -> t.requeued <- x :: t.requeued)

let close t = Mutex.protect t.mutex (fun () -> t.closed <- true)
let is_closed t = Mutex.protect t.mutex (fun () -> t.closed)

(* Unconsumed tasks in pop order: recovered tasks first, then the rest of
   the base array.  Caller holds the mutex. *)
let unconsumed t =
  let tail = ref [] in
  for i = Array.length t.items - 1 downto t.next do
    tail := t.items.(i) :: !tail
  done;
  t.requeued @ !tail

let drain t =
  Mutex.protect t.mutex (fun () ->
      t.closed <- true;
      let rest = unconsumed t in
      t.requeued <- [];
      t.next <- Array.length t.items;
      rest)

let total t = Array.length t.items

let remaining t =
  Mutex.protect t.mutex (fun () ->
      List.length t.requeued + (Array.length t.items - t.next))
