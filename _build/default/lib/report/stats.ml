(** Small numeric helpers for experiment reporting. *)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let minimum = function [] -> 0.0 | x :: rest -> List.fold_left min x rest
let maximum = function [] -> 0.0 | x :: rest -> List.fold_left max x rest

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

let mean_int l = mean (List.map float_of_int l)

(** Wilson-style display of an empirical probability. *)
let pp_prob ppf p =
  if Float.is_nan p then Fmt.string ppf "-" else Fmt.pf ppf "%.2f" p

let pp_time_ms ppf t =
  if t < 0.0 then Fmt.string ppf "-" else Fmt.pf ppf "%.2f" (t *. 1000.0)
