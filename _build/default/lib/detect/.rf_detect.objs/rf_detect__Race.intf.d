lib/detect/race.mli: Event Format Loc Rf_events Rf_util Site
