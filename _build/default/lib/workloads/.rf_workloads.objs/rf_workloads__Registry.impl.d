lib/workloads/registry.ml: Cache4j Coll_drivers Extras Figure1 Figure2 Hedc Jigsaw Jspider List Moldyn Montecarlo Raytracer Sor String Weblech Workload
