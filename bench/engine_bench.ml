(* Scheduler micro-benchmark: raw engine throughput (steps/sec) on three
   synthetic workloads that isolate the per-step hot paths —

     access-heavy : unsynchronized shared reads/writes (Mem fast path,
                    lockset snapshots, emit)
     lock-heavy   : one contended monitor (acquire/release bookkeeping,
                    enabled-set transitions)
     fork-heavy   : a wide burst of forks + joins (thread-table growth,
                    join wake-ups, death bookkeeping)

   Each workload is measured four ways:

     sequential          : Engine.run under the simple random scheduler
     sequential-recorded : same run emitting a binary trace (Btrace) —
                           the recording tax in isolation
     campaign            : the whole production pipeline (Campaign.run:
                           inline phase-1 detection + phase-2 trials)
     campaign-offline    : the same pipeline with --offline-detect
                           (record-then-detect phase 1)

   so the detection tax — sequential vs campaign throughput — is tracked
   PR-over-PR in both detection modes.  [--max-tax R] turns the
   access-heavy ratio into a CI gate: the bench fails if
   sequential/campaign-offline exceeds R.

   Results are written as JSON (default BENCH_engine.json) so the perf
   trajectory is tracked PR-over-PR.  The same executable owns the
   trace-fingerprint drift check used by CI: [--write-golden FILE] records
   the fingerprints of every registry workload (plus the three bench
   workloads) at fixed seeds, and [--check FILE] recomputes and fails on
   any drift — pinning engine behaviour, not just its speed.

   Usage:
     dune exec bench/engine_bench.exe                      # full bench
     dune exec bench/engine_bench.exe -- --smoke           # tiny budget (CI)
     dune exec bench/engine_bench.exe -- --out FILE        # JSON destination
     dune exec bench/engine_bench.exe -- --max-tax R       # gate on the ratio
     dune exec bench/engine_bench.exe -- --check FILE      # fingerprint drift
     dune exec bench/engine_bench.exe -- --write-golden FILE
     dune exec bench/engine_bench.exe -- --fingerprints    # print, no bench *)

open Rf_util
open Rf_runtime
module W = Rf_workloads

let s = Site.make

(* ------------------------------------------------------------------ *)
(* Workloads.  Campaign rows run the whole pipeline — phase 1 discovers
   the racing pairs itself, exactly as production does.                  *)

type bench_workload = { bname : string; program : unit -> unit }

let access_heavy ~threads ~iters =
  let r = s "ah-read" and w = s "ah-write" in
  {
    bname = "access-heavy";
    program =
      (fun () ->
        let c = Api.Cell.make ~name:"hot" 0 in
        let hs =
          List.init threads (fun i ->
              Api.fork ~name:(Printf.sprintf "a%d" i) (fun () ->
                  for _ = 1 to iters do
                    let v = Api.Cell.read ~site:r c in
                    Api.Cell.write ~site:w c (v + 1)
                  done))
        in
        List.iter Api.join hs);
  }

let lock_heavy ~threads ~iters =
  let r = s "lh-read" and w = s "lh-write" in
  {
    bname = "lock-heavy";
    program =
      (fun () ->
        let c = Api.Cell.make ~name:"counter" 0 in
        let l = Lock.create ~name:"hotlock" () in
        let hs =
          List.init threads (fun i ->
              Api.fork ~name:(Printf.sprintf "l%d" i) (fun () ->
                  for _ = 1 to iters do
                    Api.sync ~site:(s "lh-sync") l (fun () ->
                        let v = Api.Cell.read ~site:r c in
                        Api.Cell.write ~site:w c (v + 1))
                  done))
        in
        List.iter Api.join hs);
  }

let fork_heavy ~children ~iters =
  let w = s "fh-write" in
  {
    bname = "fork-heavy";
    program =
      (fun () ->
        let c = Api.Cell.make ~name:"sink" 0 in
        let hs =
          List.init children (fun i ->
              Api.fork ~name:(Printf.sprintf "f%d" i) (fun () ->
                  for _ = 1 to iters do
                    Api.Cell.write ~site:w c i
                  done))
        in
        List.iter Api.join hs);
  }

(* The serve family's test-sized instance rides along at both budgets:
   its campaign rows put a server-shaped (many-location, fork/join-wide)
   detector load on the memory column, and the fingerprint golden pins
   its schedule. *)
let serve_small =
  let w = List.hd W.Serve.small in
  { bname = w.W.Workload.name; program = w.W.Workload.program }

let workloads ~smoke =
  if smoke then
    [
      access_heavy ~threads:4 ~iters:200;
      lock_heavy ~threads:4 ~iters:60;
      fork_heavy ~children:60 ~iters:4;
      serve_small;
    ]
  else
    [
      access_heavy ~threads:8 ~iters:20_000;
      lock_heavy ~threads:8 ~iters:4_000;
      fork_heavy ~children:2_000 ~iters:8;
      serve_small;
    ]

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

type row = {
  r_workload : string;
  r_harness : string;
      (* "sequential" | "sequential-recorded" | "campaign" | "campaign-offline" *)
  r_domains : int;
  r_runs : int;
  r_steps : int;  (* total executed scheduler steps, deterministic *)
  r_wall : float;
  r_steps_per_sec : float;
  r_peak_heap_words : int;  (* max major-heap words observed during the row *)
}

(* Peak major-heap footprint of one measured region: compact first so
   earlier rows' garbage cannot be charged to this one, then sample
   [heap_words] at every major-collection end (Gc alarm) and once more at
   the finish.  Words, not bytes, so the number is word-size neutral. *)
let with_peak_heap f =
  Gc.compact ();
  let peak = ref (Gc.quick_stat ()).Gc.heap_words in
  let sample () =
    let hw = (Gc.quick_stat ()).Gc.heap_words in
    if hw > !peak then peak := hw
  in
  let alarm = Gc.create_alarm sample in
  let finish () =
    Gc.delete_alarm alarm;
    sample ()
  in
  (match f () with
  | r ->
      finish ();
      (r, !peak)
  | exception e ->
      finish ();
      raise e)

(* The one throughput division of the whole bench: guarded so a
   sub-resolution wall clock can never leak inf/nan into the JSON. *)
let per_sec steps wall = if wall > 0.0 then float_of_int steps /. wall else 0.0

let run_once ?btrace ~seed (wl : bench_workload) =
  Engine.run
    ~config:{ Engine.default_config with seed; max_steps = 50_000_000 }
    ?btrace ~strategy:(Strategy.random ()) wl.program

let measure_sequential ?(recorded = false) ~min_wall (wl : bench_workload) =
  ignore (run_once ~seed:0 wl) (* warmup *);
  let steps = ref 0 and runs = ref 0 in
  let (wall, _), peak =
    with_peak_heap (fun () ->
        let t0 = Unix.gettimeofday () in
        let elapsed () = Unix.gettimeofday () -. t0 in
        while elapsed () < min_wall do
          let o =
            if recorded then begin
              let bw = Rf_events.Btrace.writer () in
              let o = run_once ~btrace:bw ~seed:(1 + !runs) wl in
              ignore (Rf_events.Btrace.seal bw);
              o
            end
            else run_once ~seed:(1 + !runs) wl
          in
          steps := !steps + o.Outcome.steps;
          incr runs
        done;
        (elapsed (), ()))
  in
  {
    r_workload = wl.bname;
    r_harness = (if recorded then "sequential-recorded" else "sequential");
    r_domains = 1;
    r_runs = !runs;
    r_steps = !steps;
    r_wall = wall;
    r_steps_per_sec = per_sec !steps wall;
    r_peak_heap_words = peak;
  }

(* The whole pipeline as production runs it — phase 1 (inline or
   record-then-detect) plus every phase-2 trial over the potential pairs
   phase 1 found.  Steps and wall cover both phases, so the row's
   steps/sec is the end-to-end campaign throughput the detection-tax gate
   compares against [sequential]. *)
let measure_campaign ?offline_detect ~domains ~trials (wl : bench_workload) =
  let r, peak =
    with_peak_heap (fun () ->
        Rf_campaign.Campaign.run ~domains ~phase1_seeds:[ 0; 1; 2 ]
          ~seeds_per_pair:(List.init trials Fun.id)
          ?offline_detect wl.program)
  in
  let a = r.Rf_campaign.Campaign.analysis in
  let p1_steps =
    List.fold_left
      (fun acc (o : Outcome.t) -> acc + o.Outcome.steps)
      0 a.Racefuzzer.Fuzzer.a_phase1.Racefuzzer.Fuzzer.p1_outcomes
  in
  let steps =
    List.fold_left
      (fun acc (pr : Racefuzzer.Fuzzer.pair_result) ->
        List.fold_left
          (fun acc (t : Racefuzzer.Fuzzer.trial) ->
            acc + t.Racefuzzer.Fuzzer.t_outcome.Outcome.steps)
          acc pr.Racefuzzer.Fuzzer.trials)
      p1_steps a.Racefuzzer.Fuzzer.results
  in
  let stats = r.Rf_campaign.Campaign.stats in
  let wall =
    stats.Rf_campaign.Campaign.s_wall
    +. stats.Rf_campaign.Campaign.s_phase1_wall
  in
  {
    r_workload = wl.bname;
    r_harness =
      (if offline_detect = None then "campaign" else "campaign-offline");
    r_domains = domains;
    r_runs = stats.Rf_campaign.Campaign.s_trials;
    r_steps = steps;
    r_wall = wall;
    r_steps_per_sec = per_sec steps wall;
    r_peak_heap_words = peak;
  }

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: no JSON dependency in the tree)           *)

(* Schema 2: the domain count moved from the file header into each result
   row — sequential rows are always single-domain while campaign rows run
   wherever --domains puts them, and trajectories must compare like with
   like.
   Schema 3: each row gains [peak_heap_words], the maximum major-heap
   footprint observed while the row ran (compacted baseline, Gc-alarm
   sampled), so detector-memory trajectories are tracked alongside
   throughput. *)
let write_json ~path ~mode rows =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"rf-bench-engine/3\",\n";
  pf "  \"mode\": %S,\n" mode;
  pf "  \"results\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    {\"workload\": %S, \"harness\": %S, \"domains\": %d, \"runs\": %d, \
         \"steps\": %d, \"wall_s\": %.6f, \"steps_per_sec\": %.1f, \
         \"peak_heap_words\": %d}%s\n"
        r.r_workload r.r_harness r.r_domains r.r_runs r.r_steps r.r_wall
        r.r_steps_per_sec r.r_peak_heap_words
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ]\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Trace fingerprints: the drift check.

   Every registry workload plus the three bench workloads, run with a
   recorded trace at two fixed seeds under the simple random scheduler.
   Fingerprints are structural (Event.hash_fold) and stable across
   processes, so they can live in a checked-in golden file.             *)

let fingerprint_seeds = [ 1; 7 ]

let fingerprint_subjects () =
  List.map
    (fun (w : W.Workload.t) -> (w.W.Workload.name, w.W.Workload.program))
    W.Registry.all
  @ List.map (fun wl -> (wl.bname, wl.program)) (workloads ~smoke:true)

let compute_fingerprints () =
  List.concat_map
    (fun (name, program) ->
      List.map
        (fun seed ->
          let o =
            Engine.run
              ~config:
                { Engine.default_config with seed; record_trace = true }
              ~strategy:(Strategy.random ()) program
          in
          let fp =
            match o.Outcome.trace with
            | Some tr -> Rf_events.Trace.fingerprint tr
            | None -> 0
          in
          (name, seed, fp))
        fingerprint_seeds)
    (fingerprint_subjects ())

let write_golden path entries =
  let oc = open_out path in
  Printf.fprintf oc
    "# Golden trace fingerprints: <workload> <seed> <fingerprint>\n";
  Printf.fprintf oc
    "# Regenerate with: dune exec bench/engine_bench.exe -- --write-golden %s\n"
    path;
  List.iter
    (fun (name, seed, fp) -> Printf.fprintf oc "%s %d %d\n" name seed fp)
    entries;
  close_out oc

let read_golden path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         Scanf.sscanf line "%s %d %d" (fun name seed fp ->
             entries := (name, seed, fp) :: !entries)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let check_golden path =
  let golden = read_golden path in
  let current = compute_fingerprints () in
  let lookup name seed =
    List.find_opt (fun (n, sd, _) -> n = name && sd = seed) current
  in
  let drift = ref 0 in
  List.iter
    (fun (name, seed, fp) ->
      match lookup name seed with
      | Some (_, _, fp') when fp' = fp -> ()
      | Some (_, _, fp') ->
          incr drift;
          Fmt.epr "DRIFT %s seed %d: golden %d, got %d@." name seed fp fp'
      | None ->
          incr drift;
          Fmt.epr "DRIFT %s seed %d: missing from current build@." name seed)
    golden;
  if golden = [] then begin
    Fmt.epr "golden file %s is empty@." path;
    exit 2
  end;
  if !drift > 0 then begin
    Fmt.epr "%d fingerprint(s) drifted against %s@." !drift path;
    exit 1
  end;
  Fmt.pr "fingerprints: %d entries match %s@." (List.length golden) path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_engine.json" in
  let check = ref None in
  let write_golden_to = ref None in
  let fingerprints_only = ref false in
  let domains = ref (min 4 (Domain.recommended_domain_count ())) in
  let max_tax = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--check" :: f :: rest ->
        check := Some f;
        parse rest
    | "--write-golden" :: f :: rest ->
        write_golden_to := Some f;
        parse rest
    | "--fingerprints" :: rest ->
        fingerprints_only := true;
        parse rest
    | "--domains" :: n :: rest ->
        domains := int_of_string n;
        parse rest
    | "--max-tax" :: r :: rest ->
        max_tax := Some (float_of_string r);
        parse rest
    | a :: _ ->
        Fmt.epr
          "usage: engine_bench [--smoke] [--out FILE] [--check FILE] \
           [--write-golden FILE] [--fingerprints] [--domains N] [--max-tax R] \
           (got %s)@."
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !write_golden_to with
  | Some path ->
      write_golden path (compute_fingerprints ());
      Fmt.pr "wrote golden fingerprints to %s@." path
  | None -> ());
  if !fingerprints_only then
    List.iter
      (fun (name, seed, fp) -> Fmt.pr "%s %d %d@." name seed fp)
      (compute_fingerprints ())
  else begin
    let wls = workloads ~smoke:!smoke in
    let min_wall = if !smoke then 0.05 else 0.5 in
    let trials = if !smoke then 6 else 40 in
    let rows =
      List.concat_map
        (fun wl ->
          [
            measure_sequential ~min_wall wl;
            measure_sequential ~recorded:true ~min_wall wl;
            measure_campaign ~domains:!domains ~trials wl;
            measure_campaign ~offline_detect:1 ~domains:!domains ~trials wl;
          ])
        wls
    in
    Fmt.pr "%-18s %-19s %3s %8s %12s %10s %14s %13s@." "workload" "harness"
      "dom" "runs" "steps" "wall(s)" "steps/sec" "peak-heap-w";
    List.iter
      (fun r ->
        Fmt.pr "%-18s %-19s %3d %8d %12d %10.3f %14.0f %13d@." r.r_workload
          r.r_harness r.r_domains r.r_runs r.r_steps r.r_wall r.r_steps_per_sec
          r.r_peak_heap_words)
      rows;
    write_json ~path:!out ~mode:(if !smoke then "smoke" else "full") rows;
    Fmt.pr "wrote %s@." !out;
    (* The detection-tax gate: sequential vs offline-campaign throughput
       on the access-heavy workload (the hottest Mem path, where the tax
       historically peaked at ~18x). *)
    match !max_tax with
    | None -> ()
    | Some ceiling -> (
        let find harness =
          List.find_opt
            (fun r -> r.r_workload = "access-heavy" && r.r_harness = harness)
            rows
        in
        match (find "sequential", find "campaign-offline") with
        | Some seq, Some off when off.r_steps_per_sec > 0.0 ->
            let tax = seq.r_steps_per_sec /. off.r_steps_per_sec in
            Fmt.pr "detection tax (access-heavy, offline): %.2fx (ceiling %.2fx)@."
              tax ceiling;
            if tax > ceiling then begin
              Fmt.epr
                "FAIL: access-heavy detection tax %.2fx exceeds --max-tax %.2fx@."
                tax ceiling;
              exit 1
            end
        | _ ->
            Fmt.epr "FAIL: --max-tax given but access-heavy rows are missing@.";
            exit 1)
  end;
  match !check with Some path -> check_golden path | None -> ()
