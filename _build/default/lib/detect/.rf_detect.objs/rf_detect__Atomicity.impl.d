lib/detect/atomicity.ml: Event Fmt Hashtbl List Loc Lockset Rf_events Rf_util Site
