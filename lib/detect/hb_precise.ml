(** Precise happens-before race detection (Schonberg [44]).

    Flags two accesses as racing only when they conflict *and* are
    concurrent under the full happens-before relation, including lock
    release→acquire edges.  Precise — every report corresponds to accesses
    genuinely unordered in the observed execution — but not predictive: it
    "can only detect a race if it really happens in an execution" (paper
    §1), and it must track every shared access, giving it the large
    overhead the paper contrasts RaceFuzzer against. *)

type t = Access_detector.t

let create ?cap ?governor () =
  Access_detector.create ?cap ?governor ~name:"happens-before"
    ~lock_edges:true ~require_disjoint_locksets:false ()

let feed = Access_detector.feed
let races = Access_detector.races
let pairs = Access_detector.pairs
let race_count = Access_detector.race_count
let truncations = Access_detector.truncations
let mem_events = Access_detector.mem_events
