lib/lang/check.mli: Ast Token
