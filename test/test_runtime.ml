(* Tests for the cooperative runtime engine: scheduling, monitors,
   wait/notify, interrupts, deadlock detection, determinism/replay. *)

open Rf_util
open Rf_runtime

let run ?(seed = 0) ?(policy = Engine.Every_op) ?(record_trace = false)
    ?(max_steps = 200_000) ?(strategy = Strategy.random ()) main =
  Engine.run
    ~config:{ Engine.default_config with seed; policy; record_trace; max_steps }
    ~strategy main

let s = Api.site

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)

let test_single_thread () =
  let result = ref 0 in
  let out =
    run (fun () ->
        let c = Api.Cell.make ~name:"c" 0 in
        Api.Cell.write ~site:(s "w1") c 41;
        Api.Cell.update ~rsite:(s "r1") ~wsite:(s "w2") c (fun v -> v + 1);
        result := Api.Cell.read ~site:(s "r2") c)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check int) "computed" 42 !result;
  Alcotest.(check int) "one thread" 1 out.Outcome.threads_spawned

let test_fork_join () =
  let result = ref 0 in
  let out =
    run (fun () ->
        let c = Api.Cell.make ~name:"c" 0 in
        let h =
          Api.fork ~name:"child" (fun () -> Api.Cell.write ~site:(s "cw") c 7)
        in
        Api.join h;
        result := Api.Cell.read ~site:(s "mr") c)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check int) "child wrote before join returned" 7 !result;
  Alcotest.(check int) "two threads" 2 out.Outcome.threads_spawned

let test_many_threads () =
  let sum = ref 0 in
  let out =
    run (fun () ->
        let c = Api.Cell.make ~name:"acc" 0 in
        let l = Lock.create ~name:"L" () in
        let hs =
          List.init 8 (fun i ->
              Api.fork ~name:(Printf.sprintf "w%d" i) (fun () ->
                  Api.sync ~site:(s "sync") l (fun () ->
                      Api.Cell.update ~rsite:(s "r") ~wsite:(s "w") c (fun v -> v + 1))))
        in
        List.iter Api.join hs;
        sum := Api.Cell.read ~site:(s "final") c)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check int) "all increments kept" 8 !sum

(* ------------------------------------------------------------------ *)
(* Mutual exclusion and races                                          *)

let increments ~locked ~seed =
  let final = ref 0 in
  let out =
    run ~seed (fun () ->
        let c = Api.Cell.make ~name:"n" 0 in
        let l = Lock.create ~name:"L" () in
        let body () =
          if locked then
            Api.sync ~site:(s "li") l (fun () ->
                Api.Cell.update ~rsite:(s "lr") ~wsite:(s "lw") c (fun v -> v + 1))
          else Api.Cell.update ~rsite:(s "ur") ~wsite:(s "uw") c (fun v -> v + 1)
        in
        let a = Api.fork ~name:"a" body and b = Api.fork ~name:"b" body in
        Api.join a;
        Api.join b;
        final := Api.Cell.unsafe_peek c)
  in
  Alcotest.(check bool) "run ok" true (Outcome.ok out);
  !final

let test_locked_increments_never_lost () =
  for seed = 0 to 49 do
    Alcotest.(check int) "locked increments" 2 (increments ~locked:true ~seed)
  done

let test_unlocked_increments_race () =
  let finals = List.init 80 (fun seed -> increments ~locked:false ~seed) in
  Alcotest.(check bool) "some interleaving loses an update" true
    (List.mem 1 finals);
  Alcotest.(check bool) "some interleaving keeps both" true (List.mem 2 finals)

let test_reentrant_lock () =
  let out =
    run (fun () ->
        let l = Lock.create ~name:"R" () in
        Api.sync ~site:(s "outer") l (fun () ->
            Api.sync ~site:(s "inner") l (fun () -> ())))
  in
  Alcotest.(check bool) "reentrancy ok" true (Outcome.ok out)

let test_unlock_not_held () =
  let out =
    run (fun () ->
        let l = Lock.create ~name:"U" () in
        Api.unlock ~site:(s "bad-unlock") l)
  in
  Alcotest.(check int) "one exception" 1 (List.length out.Outcome.exceptions);
  match (List.hd out.Outcome.exceptions).Outcome.exn_ with
  | Api.Illegal_monitor_state _ -> ()
  | e -> Alcotest.failf "expected Illegal_monitor_state, got %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* wait / notify                                                       *)

let test_wait_notify_handshake () =
  for seed = 0 to 19 do
    let got = ref (-1) in
    let out =
      run ~seed (fun () ->
          let l = Lock.create ~name:"M" () in
          let ready = Api.Cell.make ~name:"ready" false in
          let data = Api.Cell.make ~name:"data" 0 in
          let consumer =
            Api.fork ~name:"consumer" (fun () ->
                Api.sync ~site:(s "c-sync") l (fun () ->
                    while not (Api.Cell.read ~site:(s "c-ready") ready) do
                      Api.wait ~site:(s "c-wait") l
                    done;
                    got := Api.Cell.read ~site:(s "c-data") data))
          in
          Api.Cell.write ~site:(s "p-data") data 99;
          Api.sync ~site:(s "p-sync") l (fun () ->
              Api.Cell.write ~site:(s "p-ready") ready true;
              Api.notify ~site:(s "p-notify") l);
          Api.join consumer)
    in
    Alcotest.(check bool) (Printf.sprintf "ok seed %d" seed) true (Outcome.ok out);
    Alcotest.(check int) "value transferred" 99 !got
  done

let test_notify_all_wakes_everyone () =
  for seed = 0 to 9 do
    let woken = ref 0 in
    let out =
      run ~seed (fun () ->
          let l = Lock.create ~name:"B" () in
          let go = Api.Cell.make ~name:"go" false in
          let hs =
            List.init 5 (fun i ->
                Api.fork ~name:(Printf.sprintf "waiter%d" i) (fun () ->
                    Api.sync ~site:(s "w-sync") l (fun () ->
                        while not (Api.Cell.read ~site:(s "w-go") go) do
                          Api.wait ~site:(s "w-wait") l
                        done;
                        incr woken)))
          in
          Api.sync ~site:(s "m-sync") l (fun () ->
              Api.Cell.write ~site:(s "m-go") go true;
              Api.notify_all ~site:(s "m-all") l);
          List.iter Api.join hs)
    in
    Alcotest.(check bool) "ok" true (Outcome.ok out);
    Alcotest.(check int) "all woken" 5 !woken
  done

let test_single_notify_wakes_one_at_a_time () =
  (* One notify with two waiters and no further notifies: one waiter stays
     in the wait set forever -> deadlock report must name it. *)
  let out =
    run ~seed:3 (fun () ->
        let l = Lock.create ~name:"D" () in
        let h1 =
          Api.fork ~name:"w1" (fun () ->
              Api.sync ~site:(s "n1-sync") l (fun () -> Api.wait ~site:(s "n1-wait") l))
        and h2 =
          Api.fork ~name:"w2" (fun () ->
              Api.sync ~site:(s "n2-sync") l (fun () -> Api.wait ~site:(s "n2-wait") l))
        in
        (* Give the waiters time to park: loop until both are waiting is not
           expressible without shared flags, so just notify once. *)
        Api.sync ~site:(s "n-main") l (fun () -> Api.notify ~site:(s "n-notify") l);
        Api.join h1;
        Api.join h2)
  in
  Alcotest.(check bool) "deadlock or ok (timing)" true
    (Outcome.deadlocked out || Outcome.ok out);
  Alcotest.(check bool) "no exception" true (out.Outcome.exceptions = [])

let test_wait_without_lock () =
  let out =
    run (fun () ->
        let l = Lock.create ~name:"W" () in
        Api.wait ~site:(s "orphan-wait") l)
  in
  match out.Outcome.exceptions with
  | [ { Outcome.exn_ = Api.Illegal_monitor_state _; _ } ] -> ()
  | _ -> Alcotest.fail "expected Illegal_monitor_state"

(* ------------------------------------------------------------------ *)
(* Deadlock detection                                                  *)

let test_classic_lock_cycle_deadlocks_sometimes () =
  let deadlocks = ref 0 in
  for seed = 0 to 39 do
    let out =
      run ~seed (fun () ->
          let l1 = Lock.create ~name:"L1" () and l2 = Lock.create ~name:"L2" () in
          let a =
            Api.fork ~name:"a" (fun () ->
                Api.sync ~site:(s "a1") l1 (fun () ->
                    Api.sync ~site:(s "a2") l2 (fun () -> ())))
          and b =
            Api.fork ~name:"b" (fun () ->
                Api.sync ~site:(s "b2") l2 (fun () ->
                    Api.sync ~site:(s "b1") l1 (fun () -> ())))
          in
          Api.join a;
          Api.join b)
    in
    if Outcome.deadlocked out then incr deadlocks
  done;
  Alcotest.(check bool) "some seeds deadlock" true (!deadlocks > 0);
  Alcotest.(check bool) "some seeds survive" true (!deadlocks < 40)

let test_forgotten_notify_deadlocks () =
  let out =
    run (fun () ->
        let l = Lock.create ~name:"F" () in
        Api.sync ~site:(s "f-sync") l (fun () -> Api.wait ~site:(s "f-wait") l))
  in
  Alcotest.(check bool) "deadlocked" true (Outcome.deadlocked out);
  Alcotest.(check (list int)) "main is the blocked thread" [ 0 ] out.Outcome.deadlocked

(* ------------------------------------------------------------------ *)
(* Interrupts and sleep                                                *)

let test_interrupt_wakes_waiter () =
  let caught = ref false in
  let out =
    run (fun () ->
        let l = Lock.create ~name:"I" () in
        let h =
          Api.fork ~name:"sleeper" (fun () ->
              try Api.sync ~site:(s "i-sync") l (fun () -> Api.wait ~site:(s "i-wait") l)
              with Api.Interrupted -> caught := true)
        in
        Api.interrupt ~site:(s "i-int") h;
        Api.join h)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check bool) "InterruptedException delivered" true !caught

let test_interrupt_sleep_uncaught () =
  let out =
    run (fun () ->
        let h = Api.fork ~name:"napper" (fun () -> Api.sleep ~site:(s "nap") ()) in
        Api.interrupt ~site:(s "npi") h;
        Api.join h)
  in
  (* Depending on scheduling the interrupt may land before or after the
     sleep executes; when it lands before, the sleep throws and the thread
     dies with an uncaught Interrupted. Both runs must terminate. *)
  Alcotest.(check bool) "terminates" true
    (out.Outcome.deadlocked = [] && not out.Outcome.timed_out)

let test_interrupt_before_wait_throws_immediately () =
  let caught = ref false in
  let out =
    run ~strategy:(Strategy.round_robin ()) (fun () ->
        let l = Lock.create ~name:"IW" () in
        let flag = Api.Cell.make ~name:"flag" false in
        let h =
          Api.fork ~name:"victim" (fun () ->
              (* spin until the interrupt has been sent *)
              while not (Api.Cell.read ~site:(s "v-flag") flag) do
                ()
              done;
              try Api.sync ~site:(s "v-sync") l (fun () -> Api.wait ~site:(s "v-wait") l)
              with Api.Interrupted -> caught := true)
        in
        Api.interrupt ~site:(s "v-int") h;
        Api.Cell.write ~site:(s "v-set") flag true;
        Api.join h)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check bool) "wait threw immediately" true !caught

(* ------------------------------------------------------------------ *)
(* Exceptions                                                          *)

let test_thread_exception_recorded () =
  let out =
    run (fun () ->
        let h = Api.fork ~name:"bomber" (fun () -> Api.error "boom") in
        Api.join h)
  in
  (match out.Outcome.exceptions with
  | [ r ] ->
      Alcotest.(check string) "thread name" "bomber" r.Outcome.xthread;
      (match r.Outcome.exn_ with
      | Api.Model_error m -> Alcotest.(check string) "message" "boom" m
      | e -> Alcotest.failf "unexpected %s" (Printexc.to_string e))
  | l -> Alcotest.failf "expected 1 exception, got %d" (List.length l));
  Alcotest.(check bool) "join still returned" true (out.Outcome.deadlocked = [])

let test_dying_thread_releases_locks () =
  let out =
    run (fun () ->
        let l = Lock.create ~name:"DL" () in
        let h =
          Api.fork ~name:"dier" (fun () ->
              Api.lock ~site:(s "d-lock") l;
              Api.error "died holding lock")
        in
        Api.join h;
        (* must not deadlock here *)
        Api.sync ~site:(s "d-after") l (fun () -> ()))
  in
  Alcotest.(check bool) "no deadlock" true (out.Outcome.deadlocked = []);
  Alcotest.(check int) "one exception" 1 (List.length out.Outcome.exceptions)

(* ------------------------------------------------------------------ *)
(* Determinism and replay                                              *)

let racy_program () =
  let c = Api.Cell.make ~name:"c" 0 in
  let l = Lock.create ~name:"L" () in
  let hs =
    List.init 4 (fun i ->
        Api.fork ~name:(Printf.sprintf "t%d" i) (fun () ->
            if i mod 2 = 0 then
              Api.Cell.update ~rsite:(s "rp-r") ~wsite:(s "rp-w") c (fun v -> v + 1)
            else
              Api.sync ~site:(s "rp-s") l (fun () ->
                  Api.Cell.update ~rsite:(s "rp-lr") ~wsite:(s "rp-lw") c (fun v -> v + 10))))
  in
  List.iter Api.join hs

let test_replay_same_seed_same_trace () =
  for seed = 0 to 9 do
    let run1 = run ~seed ~record_trace:true racy_program in
    let run2 = run ~seed ~record_trace:true racy_program in
    match (run1.Outcome.trace, run2.Outcome.trace) with
    | Some t1, Some t2 ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: identical traces" seed)
          true
          (Rf_events.Trace.equal t1 t2)
    | _ -> Alcotest.fail "traces missing"
  done

let test_different_seeds_differ () =
  let fps =
    List.init 20 (fun seed ->
        let out = run ~seed ~record_trace:true racy_program in
        match out.Outcome.trace with
        | Some t -> Rf_events.Trace.fingerprint t
        | None -> 0)
  in
  let distinct = List.sort_uniq compare fps in
  Alcotest.(check bool) "at least two distinct schedules" true
    (List.length distinct > 1)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine deterministic for any seed" ~count:40
    QCheck.small_int (fun seed ->
      let r1 = run ~seed ~record_trace:true racy_program in
      let r2 = run ~seed ~record_trace:true racy_program in
      match (r1.Outcome.trace, r2.Outcome.trace) with
      | Some t1, Some t2 -> Rf_events.Trace.equal t1 t2
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Switch policy                                                       *)

let test_sync_only_policy_fewer_switches () =
  let heavy () =
    let c = Api.Cell.make ~name:"h" 0 in
    let h =
      Api.fork ~name:"w" (fun () ->
          for i = 1 to 100 do
            Api.Cell.write ~site:(s "hp-w") c i
          done)
    in
    for _ = 1 to 100 do
      ignore (Api.Cell.read ~site:(s "hp-r") c)
    done;
    Api.join h
  in
  let every = run ~seed:1 ~policy:Engine.Every_op heavy in
  let synco = run ~seed:1 ~policy:(Engine.Sync_and Site.Set.empty) heavy in
  Alcotest.(check bool) "both ok" true (Outcome.ok every && Outcome.ok synco);
  Alcotest.(check bool) "sync-only consults strategy less" true
    (synco.Outcome.switches < every.Outcome.switches);
  Alcotest.(check bool) "similar step counts" true
    (abs (synco.Outcome.steps - every.Outcome.steps) <= 2)

let test_sync_and_watched_site_switches () =
  let watched = s "watched-w" in
  let prog () =
    let c = Api.Cell.make ~name:"wc" 0 in
    let h =
      Api.fork ~name:"w" (fun () ->
          for _ = 1 to 10 do
            Api.Cell.write ~site:watched c 1
          done)
    in
    Api.join h
  in
  let none = run ~seed:0 ~policy:(Engine.Sync_and Site.Set.empty) prog in
  let some = run ~seed:0 ~policy:(Engine.Sync_and (Site.Set.singleton watched)) prog in
  Alcotest.(check bool) "watching a site adds switch points" true
    (some.Outcome.switches > none.Outcome.switches)

(* ------------------------------------------------------------------ *)
(* Step bound (livelock guard)                                         *)

let test_step_bound_hits () =
  let out =
    run ~max_steps:500 (fun () ->
        let c = Api.Cell.make ~name:"spin" false in
        while not (Api.Cell.read ~site:(s "spin-r") c) do
          ()
        done)
  in
  Alcotest.(check bool) "timed out" true out.Outcome.timed_out

(* ------------------------------------------------------------------ *)
(* Trace contents                                                      *)

let test_trace_structure () =
  let out =
    run ~record_trace:true ~strategy:(Strategy.round_robin ()) (fun () ->
        let l = Lock.create ~name:"T" () in
        let c = Api.Cell.make ~name:"tc" 0 in
        Api.sync ~site:(s "t-sync") l (fun () -> Api.Cell.write ~site:(s "t-w") c 1))
  in
  match out.Outcome.trace with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
      let events = Rf_events.Trace.to_list tr in
      let has p = List.exists p events in
      Alcotest.(check bool) "has start" true
        (has (function Rf_events.Event.Start { name = "main"; _ } -> true | _ -> false));
      Alcotest.(check bool) "has acquire" true
        (has (function Rf_events.Event.Acquire _ -> true | _ -> false));
      Alcotest.(check bool) "has release" true
        (has (function Rf_events.Event.Release _ -> true | _ -> false));
      Alcotest.(check bool) "write under lock has nonempty lockset" true
        (has (function
          | Rf_events.Event.Mem { access = Rf_events.Event.Write; lockset; _ } ->
              not (Rf_events.Lockset.is_empty lockset)
          | _ -> false));
      Alcotest.(check bool) "has exit" true
        (has (function Rf_events.Event.Exit _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)

let test_wait_preserves_reentrancy_depth () =
  (* wait inside a doubly-nested sync must release fully and restore
     depth 2 on wakeup; the final unlocks must not throw *)
  let out =
    run ~seed:4 (fun () ->
        let l = Lock.create ~name:"RD" () in
        let flag = Api.Cell.make ~name:"flag" false in
        let waiter =
          Api.fork ~name:"waiter" (fun () ->
              Api.sync ~site:(s "rd-outer") l (fun () ->
                  Api.sync ~site:(s "rd-inner") l (fun () ->
                      while not (Api.Cell.read ~site:(s "rd-flag") flag) do
                        Api.wait ~site:(s "rd-wait") l
                      done)))
        in
        (* while the waiter is parked, the monitor must be acquirable *)
        Api.sync ~site:(s "rd-signal") l (fun () ->
            Api.Cell.write ~site:(s "rd-set") flag true;
            Api.notify_all ~site:(s "rd-notify") l);
        Api.join waiter)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out)

let test_self_join_deadlocks () =
  let out =
    run (fun () ->
        let self = ref None in
        let h =
          Api.fork ~name:"narcissus" (fun () ->
              match !self with Some h -> Api.join h | None -> ())
        in
        self := Some h;
        (* give the child its own handle, then wait for it *)
        Api.join h)
  in
  (* the child joins itself -> blocked forever -> real deadlock *)
  Alcotest.(check bool) "deadlock detected" true
    (Outcome.deadlocked out || Outcome.ok out)

let test_join_already_dead () =
  let out =
    run (fun () ->
        let h = Api.fork ~name:"quick" (fun () -> ()) in
        (* schedule enough to let it die in most interleavings, then join
           twice: joining a dead thread returns immediately *)
        Api.join h;
        Api.join h)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out)

let test_fork_cascade () =
  (* grandchildren: fork inside fork, all joined transitively *)
  let total = ref 0 in
  let out =
    run (fun () ->
        let c = Api.Cell.make ~name:"sum" 0 in
        let l = Lock.create ~name:"sum" () in
        let add n =
          Api.sync ~site:(s "fc-sync") l (fun () ->
              Api.Cell.update ~rsite:(s "fc-r") ~wsite:(s "fc-w") c (fun v -> v + n))
        in
        let parent =
          Api.fork ~name:"parent" (fun () ->
              let kids =
                List.init 3 (fun i ->
                    Api.fork ~name:(Printf.sprintf "kid%d" i) (fun () -> add (i + 1)))
              in
              List.iter Api.join kids;
              add 10)
        in
        Api.join parent;
        total := Api.Cell.unsafe_peek c)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check int) "all contributions" 16 !total;
  Alcotest.(check int) "five threads" 5 out.Outcome.threads_spawned

let test_interrupt_flag_not_lost_on_acquire () =
  (* interrupt while blocked on a lock: synchronized is NOT interruptible,
     so the thread should acquire normally and see the exception only at
     its next interruptible point *)
  let caught_at_sleep = ref false in
  let out =
    run ~strategy:(Strategy.round_robin ()) (fun () ->
        let l = Lock.create ~name:"NI" () in
        let started = Api.Cell.make ~name:"started" false in
        let victim =
          Api.fork ~name:"victim" (fun () ->
              while not (Api.Cell.read ~site:(s "ni-spin") started) do
                ()
              done;
              Api.sync ~site:(s "ni-sync") l (fun () -> ());
              try Api.sleep ~site:(s "ni-sleep") ()
              with Api.Interrupted -> caught_at_sleep := true)
        in
        Api.lock ~site:(s "ni-main-lock") l;
        Api.Cell.write ~site:(s "ni-start") started true;
        (* victim now blocks acquiring l; interrupt it there *)
        Api.interrupt ~site:(s "ni-int") victim;
        Api.unlock ~site:(s "ni-main-unlock") l;
        Api.join victim)
  in
  Alcotest.(check bool) "terminates cleanly" true (out.Outcome.deadlocked = []);
  Alcotest.(check bool) "exception delivered at the sleep" true !caught_at_sleep

let test_notify_choice_is_seed_dependent () =
  (* with several waiters and one notify, which waiter wakes is random but
     seed-deterministic *)
  let woken_of seed =
    let woken = ref (-1) in
    let _ =
      run ~seed (fun () ->
          let l = Lock.create ~name:"NC" () in
          let parked = Api.Cell.make ~name:"parked" 0 in
          let hs =
            List.init 3 (fun i ->
                Api.fork ~name:(Printf.sprintf "w%d" i) (fun () ->
                    Api.sync ~site:(s "nc-sync") l (fun () ->
                        Api.Cell.update ~rsite:(s "nc-pr") ~wsite:(s "nc-pw") parked
                          (fun v -> v + 1);
                        Api.wait ~site:(s "nc-wait") l;
                        woken := i)))
          in
          (* wait until all three are parked, then notify one *)
          let rec spin () =
            if Api.Cell.read ~site:(s "nc-check") parked < 3 then spin ()
          in
          spin ();
          Api.sync ~site:(s "nc-m") l (fun () -> Api.notify ~site:(s "nc-n") l);
          ignore hs)
    in
    !woken
  in
  let results = List.init 30 woken_of in
  Alcotest.(check bool) "some waiter woken" true (List.for_all (fun w -> w >= 0) results);
  Alcotest.(check bool) "different waiters across seeds" true
    (List.length (List.sort_uniq compare results) > 1);
  Alcotest.(check int) "deterministic per seed" (woken_of 11) (woken_of 11)

let test_exception_in_main_thread () =
  let out = run (fun () -> Api.error "main exploded") in
  (match out.Outcome.exceptions with
  | [ r ] -> Alcotest.(check string) "main named" "main" r.Outcome.xthread
  | _ -> Alcotest.fail "expected one exception");
  Alcotest.(check bool) "run completed" true (not out.Outcome.timed_out)

let test_orphaned_children_still_run () =
  (* main exits without joining; children must still execute to completion *)
  let done_ = ref 0 in
  let out =
    run (fun () ->
        for i = 1 to 3 do
          ignore
            (Api.fork ~name:(Printf.sprintf "orphan%d" i) (fun () -> incr done_))
        done)
  in
  Alcotest.(check bool) "ok" true (Outcome.ok out);
  Alcotest.(check int) "all orphans ran" 3 !done_

(* ------------------------------------------------------------------ *)
(* Enabledness edge cases                                              *)

let test_reentrant_acquire_stays_enabled () =
  (* A thread parked at a *reentrant* acquire (it already holds the
     monitor) must stay enabled even while another thread contends for the
     same lock; treating any acquire of a held lock as disabled would
     deadlock this program instantly. *)
  List.iter
    (fun seed ->
      let order = ref [] in
      let out =
        run ~seed ~record_trace:true (fun () ->
            let l = Lock.create ~name:"RE" () in
            let h =
              Api.fork ~name:"contender" (fun () ->
                  Api.sync ~site:(s "re-b") l (fun () -> order := `B :: !order))
            in
            Api.sync ~site:(s "re-outer") l (fun () ->
                Api.sync ~site:(s "re-inner") l (fun () -> order := `A :: !order));
            Api.join h)
      in
      Alcotest.(check bool) "no deadlock" true (Outcome.ok out);
      Alcotest.(check bool) "both sections ran" true
        (List.mem `A !order && List.mem `B !order);
      (* the nested acquire is silent: exactly one Acquire of RE by main *)
      match out.Outcome.trace with
      | None -> Alcotest.fail "trace not recorded"
      | Some tr ->
          let main_acquires =
            Rf_events.Trace.fold
              (fun n ev ->
                match ev with
                | Rf_events.Event.Acquire { tid = 0; _ } -> n + 1
                | _ -> n)
              0 tr
          in
          Alcotest.(check int) "reentrant acquire emits no event" 1 main_acquires)
    (List.init 25 Fun.id)

let test_reacquire_disabled_until_notifier_releases () =
  (* A notified waiter re-contends for the monitor but must not run before
     the notifier leaves it: whatever the notifier does *after* notify but
     still inside the monitor happens before the waiter resumes. *)
  List.iter
    (fun seed ->
      let violations = ref 0 in
      let out =
        run ~seed (fun () ->
            let l = Lock.create ~name:"RQ" () in
            let flag = Api.Cell.make ~name:"flag" false in
            let parked = Api.Cell.make ~name:"parked" false in
            let w =
              Api.fork ~name:"waiter" (fun () ->
                  Api.sync ~site:(s "rq-wsync") l (fun () ->
                      Api.Cell.write ~site:(s "rq-parked") parked true;
                      Api.wait ~site:(s "rq-wait") l;
                      (* the notifier set this after notify, inside the
                         monitor; if we ran before its release we'd see
                         false *)
                      if not (Api.Cell.read ~site:(s "rq-check") flag) then
                        incr violations))
            in
            let rec spin () =
              if not (Api.Cell.read ~site:(s "rq-spin") parked) then spin ()
            in
            spin ();
            Api.sync ~site:(s "rq-nsync") l (fun () ->
                Api.notify ~site:(s "rq-notify") l;
                Api.Cell.write ~site:(s "rq-set") flag true);
            Api.join w)
      in
      Alcotest.(check bool) "no deadlock" true (Outcome.ok out);
      Alcotest.(check int) "waiter never ran inside notifier's monitor" 0 !violations)
    (List.init 25 Fun.id)

let test_join_live_thread_interrupt_pending () =
  (* A thread parked joining a *live* target is disabled — until an
     interrupt arrives, which enables it so the pending Join can deliver
     Interrupted while the target is still running. *)
  List.iter
    (fun seed ->
      let caught = ref false in
      let target_alive_at_catch = ref false in
      let target_exited = ref false in
      let out =
        run ~seed (fun () ->
            let stop = Api.Cell.make ~name:"stop" false in
            let c =
              Api.fork ~name:"target" (fun () ->
                  let rec spin () =
                    if not (Api.Cell.read ~site:(s "jl-spin") stop) then spin ()
                  in
                  spin ();
                  target_exited := true)
            in
            let j =
              Api.fork ~name:"joiner" (fun () ->
                  (try Api.join ~site:(s "jl-join") c
                   with Api.Interrupted ->
                     caught := true;
                     target_alive_at_catch := not !target_exited);
                  Api.Cell.write ~site:(s "jl-stop") stop true;
                  Api.join ~site:(s "jl-rejoin") c)
            in
            Api.interrupt ~site:(s "jl-int") j;
            Api.join j)
      in
      Alcotest.(check bool) "no deadlock" true (Outcome.ok out);
      Alcotest.(check bool) "Interrupted delivered at join" true !caught;
      Alcotest.(check bool) "target still alive when caught" true
        !target_alive_at_catch)
    (List.init 25 Fun.id)

let () =
  Alcotest.run "rf_runtime"
    [
      ( "basics",
        [
          Alcotest.test_case "single thread" `Quick test_single_thread;
          Alcotest.test_case "fork/join" `Quick test_fork_join;
          Alcotest.test_case "many threads" `Quick test_many_threads;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "locked increments never lost" `Quick
            test_locked_increments_never_lost;
          Alcotest.test_case "unlocked increments race" `Quick
            test_unlocked_increments_race;
          Alcotest.test_case "reentrant lock" `Quick test_reentrant_lock;
          Alcotest.test_case "unlock not held" `Quick test_unlock_not_held;
        ] );
      ( "wait/notify",
        [
          Alcotest.test_case "handshake" `Quick test_wait_notify_handshake;
          Alcotest.test_case "notify_all" `Quick test_notify_all_wakes_everyone;
          Alcotest.test_case "single notify" `Quick
            test_single_notify_wakes_one_at_a_time;
          Alcotest.test_case "wait without lock" `Quick test_wait_without_lock;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "lock cycle" `Quick
            test_classic_lock_cycle_deadlocks_sometimes;
          Alcotest.test_case "forgotten notify" `Quick test_forgotten_notify_deadlocks;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "wakes waiter" `Quick test_interrupt_wakes_waiter;
          Alcotest.test_case "sleep uncaught" `Quick test_interrupt_sleep_uncaught;
          Alcotest.test_case "pending flag" `Quick
            test_interrupt_before_wait_throws_immediately;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "recorded" `Quick test_thread_exception_recorded;
          Alcotest.test_case "locks released on death" `Quick
            test_dying_thread_releases_locks;
        ] );
      ( "replay",
        [
          Alcotest.test_case "same seed same trace" `Quick
            test_replay_same_seed_same_trace;
          Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
          QCheck_alcotest.to_alcotest prop_engine_deterministic;
        ] );
      ( "policy",
        [
          Alcotest.test_case "sync-only fewer switches" `Quick
            test_sync_only_policy_fewer_switches;
          Alcotest.test_case "watched site switches" `Quick
            test_sync_and_watched_site_switches;
        ] );
      ( "limits", [ Alcotest.test_case "step bound" `Quick test_step_bound_hits ] );
      ( "trace", [ Alcotest.test_case "structure" `Quick test_trace_structure ] );
      ( "edge-cases",
        [
          Alcotest.test_case "wait preserves depth" `Quick
            test_wait_preserves_reentrancy_depth;
          Alcotest.test_case "self join" `Quick test_self_join_deadlocks;
          Alcotest.test_case "join dead twice" `Quick test_join_already_dead;
          Alcotest.test_case "fork cascade" `Quick test_fork_cascade;
          Alcotest.test_case "interrupt while lock-blocked" `Quick
            test_interrupt_flag_not_lost_on_acquire;
          Alcotest.test_case "notify choice" `Quick test_notify_choice_is_seed_dependent;
          Alcotest.test_case "exception in main" `Quick test_exception_in_main_thread;
          Alcotest.test_case "orphans run" `Quick test_orphaned_children_still_run;
        ] );
      ( "enabledness",
        [
          Alcotest.test_case "reentrant acquire stays enabled" `Quick
            test_reentrant_acquire_stays_enabled;
          Alcotest.test_case "reacquire gated on notifier release" `Quick
            test_reacquire_disabled_until_notifier_releases;
          Alcotest.test_case "join live target + interrupt" `Quick
            test_join_live_thread_interrupt_pending;
        ] );
    ]
