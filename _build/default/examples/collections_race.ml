(* The paper's §5.3 JDK bug, reproduced end to end: calling
   l1.containsAll(l2) and mutating l2 concurrently on *synchronized*
   LinkedLists throws ConcurrentModificationException /
   NoSuchElementException, because AbstractCollection's containsAll
   iterates its argument without holding the argument's lock.

   Run with:  dune exec examples/collections_race.exe *)

open Rf_util
open Rf_runtime
open Rf_collections

let program () =
  let l1 = Collections.synchronized_list (Linked_list.as_coll (Linked_list.create ())) in
  let l2 = Collections.synchronized_list (Linked_list.as_coll (Linked_list.create ())) in
  for i = 1 to 3 do
    ignore (l1.Jcoll.add i);
    ignore (l2.Jcoll.add (i * 10))
  done;
  let reader =
    Api.fork ~name:"containsAll-caller" (fun () ->
        (* holds l1's monitor, iterates l2 WITHOUT l2's monitor *)
        ignore (Collections.contains_all l1 l2))
  in
  let mutator =
    Api.fork ~name:"mutator" (fun () ->
        ignore (l2.Jcoll.remove 20);
        ignore (l2.Jcoll.add 99))
  in
  Api.join reader;
  Api.join mutator

let () =
  Fmt.pr "== JDK synchronized-collection bug (paper §5.3) ==@.@.";
  let analysis =
    Racefuzzer.Fuzzer.analyze
      ~phase1_seeds:(List.init 8 Fun.id)
      ~seeds_per_pair:(List.init 60 Fun.id)
      program
  in
  let potential = Racefuzzer.Fuzzer.potential_pairs analysis.Racefuzzer.Fuzzer.a_phase1 in
  Fmt.pr "hybrid: %d potential pair(s) inside the collection library@."
    (Site.Pair.Set.cardinal potential);
  List.iter
    (fun (r : Racefuzzer.Fuzzer.pair_result) ->
      if Racefuzzer.Fuzzer.is_real r then
        Fmt.pr "  REAL: %a (errors in %d/%d trials)@." Site.Pair.pp
          r.Racefuzzer.Fuzzer.pr_pair r.Racefuzzer.Fuzzer.error_trials
          (List.length r.Racefuzzer.Fuzzer.trials))
    analysis.Racefuzzer.Fuzzer.results;
  match
    List.find_opt Racefuzzer.Fuzzer.is_harmful analysis.Racefuzzer.Fuzzer.results
  with
  | None -> Fmt.pr "@.no exception-producing schedule found@."
  | Some r ->
      let seed = Option.get r.Racefuzzer.Fuzzer.error_seed in
      let o, _ = Racefuzzer.Fuzzer.replay ~seed ~program r.Racefuzzer.Fuzzer.pr_pair in
      Fmt.pr "@.replayed seed %d -> uncaught exception(s):@." seed;
      List.iter
        (fun (x : Outcome.exn_report) ->
          Fmt.pr "  %s in thread %s@."
            (Printexc.to_string x.Outcome.exn_)
            x.Outcome.xthread)
        o.Outcome.exceptions
