(** The cooperative scheduling engine.

    Runs a model program (a [unit -> unit] main that may {!Api.fork}
    further threads) with every shared access and synchronization operation
    under scheduler control, serialized exactly like the paper's execution
    model: one thread executes between yield points at a time, the
    scheduler picks among *enabled* threads (§2.1), and termination with
    live-but-blocked threads is reported as a real deadlock (Algorithm 1,
    lines 30–32).

    Replay: all nondeterminism draws from one PRNG seeded by
    [config.seed], so re-running with a seed reproduces the execution
    bit-for-bit (checked against recorded traces in the test suite). *)

open Rf_util
open Rf_events

(** Where the strategy is consulted.  [Sync_and sites] restricts switch
    points to synchronization operations plus memory accesses whose static
    site is in [sites] — the paper's low-overhead configuration (§4):
    RaceFuzzer passes its racing pair, detectors needing every access use
    [Every_op]. *)
type switch_policy = Every_op | Sync_and of Site.Set.t

(** A per-run watchdog, consulted at every switch point.  [dl_steps] caps
    the number of executed operations (exact to switch granularity);
    [dl_wall] caps wall-clock seconds, polled every [dl_poll] steps —
    including once {e before} the first step, so a run whose budget is
    already spent is cancelled without executing anything.  Hitting either
    bound stops the run cleanly with [Outcome.cancelled = Some reason]
    instead of spinning on to [max_steps].  Wall deadlines trade the
    engine's bit-exact replayability for liveness: use them to sandbox
    runaway or stalled trials, not in determinism-sensitive runs.

    [dl_heap_mb] caps the process major-heap size ([Gc.quick_stat],
    polled at the same [dl_poll] cadence as the wall clock).  The heap
    is shared across domains, so like the wall clock this bound is a
    non-deterministic backstop, not a per-trial meter.  When the
    watermark trips, [dl_heap_hook] (if any) is consulted first: a hook
    returning [true] has absorbed the overage (typically by stepping a
    resource governor down its degradation ladder) and the run
    continues; otherwise the run cancels with [Heap_watermark]. *)
type deadline = {
  dl_wall : float option;
  dl_steps : int option;
  dl_heap_mb : float option;
  dl_heap_hook : (unit -> bool) option;
  dl_poll : int;
}

val deadline :
  ?wall:float ->
  ?steps:int ->
  ?heap_mb:float ->
  ?heap_hook:(unit -> bool) ->
  ?poll:int ->
  unit ->
  deadline
(** [poll] defaults to 2048 steps per wall-clock/heap check. *)

type config = {
  seed : int;
  policy : switch_policy;
  record_trace : bool;
  max_steps : int;  (** livelock guard; exceeding it sets [timed_out] *)
  verbose : bool;  (** echo every event to stderr *)
  deadline : deadline option;  (** optional watchdog; see {!deadline} *)
}

val default_config : config
(** seed 0, [Every_op], no trace, 2M steps, quiet, no deadline. *)

exception Engine_invariant of string
(** Internal-consistency violation (e.g. a strategy returning a
    non-enabled tid); never raised by correct strategies. *)

val run :
  ?config:config ->
  ?listeners:(Event.t -> unit) list ->
  ?btrace:Btrace.writer ->
  strategy:Strategy.t ->
  (unit -> unit) ->
  Outcome.t
(** [run ~config ~listeners ~strategy main] executes one schedule.
    [listeners] observe every event online (detectors attach here).
    Resets the domain-local {!Rf_util.Loc} and {!Lock} counters, so
    allocation order is deterministic per run.

    [btrace] attaches a binary trace writer ({!Rf_events.Btrace}): every
    event is appended to the recording {e directly} — no [Event.t] is
    allocated, no lockset is snapshotted, and each thread's lockset id
    is re-interned only when its lockset changes — so recording for
    offline detection costs a small constant per step instead of the
    inline-detector tax.  The caller seals the writer after the run.
    Composes with [listeners]/[record_trace]; both channels see the same
    event sequence. *)
