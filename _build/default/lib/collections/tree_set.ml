(** Model of [java.util.TreeSet] (JDK 1.4.2): binary search tree (the JDK
    uses a red-black tree; plain BST preserves the identical concurrency
    structure — link-field reads and writes plus modCount), not
    synchronized, fail-fast in-order iterator. *)

open Rf_util
open Rf_runtime

let file = "tree_set"
let s line label = Site.make ~file ~line label

let site_size_r = s 1 "size(read)"
let site_size_w = s 2 "size(write)"
let site_mod_r = s 3 "modCount(read)"
let site_mod_w = s 4 "modCount++"
let site_root_r = s 5 "root(read)"
let site_root_w = s 6 "root(write)"
let site_link_r = s 7 "node.left/right(read)"
let site_link_w = s 8 "node.left/right(write)"
let site_it_mod = s 9 "iterator.checkForComodification"
let site_it_link = s 10 "iterator.next:node.link"
let site_it_size = s 11 "iterator.hasNext:size"

type node = {
  key : int;
  left : node option Api.Cell.t;
  right : node option Api.Cell.t;
}

type t = {
  root : node option Api.Cell.t;
  size : int Api.Cell.t;
  mod_count : int Api.Cell.t;
  monitor : Lock.t;
}

let make_node key =
  { key; left = Api.Cell.make ~name:"left" None; right = Api.Cell.make ~name:"right" None }

let create () =
  {
    root = Api.Cell.make ~name:"root" None;
    size = Api.Cell.make ~name:"size" 0;
    mod_count = Api.Cell.make ~name:"modCount" 0;
    monitor = Lock.create ~name:"TreeSet" ();
  }

let size t = Api.Cell.read ~site:site_size_r t.size
let is_empty t = size t = 0

let bump_mod t =
  Api.Cell.write ~site:site_mod_w t.mod_count
    (Api.Cell.read ~site:site_mod_r t.mod_count + 1)

let contains t e =
  let rec go = function
    | None -> false
    | Some n ->
        if e = n.key then true
        else if e < n.key then go (Api.Cell.read ~site:site_link_r n.left)
        else go (Api.Cell.read ~site:site_link_r n.right)
  in
  go (Api.Cell.read ~site:site_root_r t.root)

let add t e =
  let rec go n =
    if e = n.key then false
    else if e < n.key then
      match Api.Cell.read ~site:site_link_r n.left with
      | Some l -> go l
      | None ->
          Api.Cell.write ~site:site_link_w n.left (Some (make_node e));
          true
    else
      match Api.Cell.read ~site:site_link_r n.right with
      | Some r -> go r
      | None ->
          Api.Cell.write ~site:site_link_w n.right (Some (make_node e));
          true
  in
  let inserted =
    match Api.Cell.read ~site:site_root_r t.root with
    | None ->
        Api.Cell.write ~site:site_root_w t.root (Some (make_node e));
        true
    | Some r -> go r
  in
  if inserted then begin
    Api.Cell.write ~site:site_size_w t.size (Api.Cell.read ~site:site_size_r t.size + 1);
    bump_mod t
  end;
  inserted

(* BST delete; instrumented link traffic mirrors TreeMap.deleteEntry. *)
let remove t e =
  let rec min_key n =
    match Api.Cell.read ~site:site_link_r n.left with
    | Some l -> min_key l
    | None -> n.key
  in
  let rec go node =
    (* returns (new_subtree, removed) *)
    match node with
    | None -> (None, false)
    | Some n ->
        if e < n.key then begin
          let sub, removed = go (Api.Cell.read ~site:site_link_r n.left) in
          if removed then Api.Cell.write ~site:site_link_w n.left sub;
          (Some n, removed)
        end
        else if e > n.key then begin
          let sub, removed = go (Api.Cell.read ~site:site_link_r n.right) in
          if removed then Api.Cell.write ~site:site_link_w n.right sub;
          (Some n, removed)
        end
        else begin
          match
            ( Api.Cell.read ~site:site_link_r n.left,
              Api.Cell.read ~site:site_link_r n.right )
          with
          | None, r -> (r, true)
          | l, None -> (l, true)
          | Some _, Some r ->
              (* replace with successor *)
              let succ = min_key r in
              let fresh = make_node succ in
              Api.Cell.write ~site:site_link_w fresh.left
                (Api.Cell.read ~site:site_link_r n.left);
              let r' =
                let rec del_min node =
                  match node with
                  | None -> None
                  | Some m ->
                      (match Api.Cell.read ~site:site_link_r m.left with
                      | None -> Api.Cell.read ~site:site_link_r m.right
                      | Some _ ->
                          let sub = del_min (Api.Cell.read ~site:site_link_r m.left) in
                          Api.Cell.write ~site:site_link_w m.left sub;
                          Some m)
                in
                del_min (Some r)
              in
              Api.Cell.write ~site:site_link_w fresh.right r';
              (Some fresh, true)
        end
  in
  let sub, removed = go (Api.Cell.read ~site:site_root_r t.root) in
  if removed then begin
    Api.Cell.write ~site:site_root_w t.root sub;
    Api.Cell.write ~site:site_size_w t.size (Api.Cell.read ~site:site_size_r t.size - 1);
    bump_mod t
  end;
  removed

let clear t =
  Api.Cell.write ~site:site_root_w t.root None;
  Api.Cell.write ~site:site_size_w t.size 0;
  bump_mod t

(** In-order fail-fast iterator via an explicit descent stack. *)
let iterator t : Jcoll.iter =
  let expected = Api.Cell.read ~site:site_it_mod t.mod_count in
  let stack = ref [] in
  let rec push_left = function
    | None -> ()
    | Some n ->
        stack := n :: !stack;
        push_left (Api.Cell.read ~site:site_it_link n.left)
  in
  push_left (Api.Cell.read ~site:site_root_r t.root);
  {
    Jcoll.has_next =
      (fun () ->
        ignore (Api.Cell.read ~site:site_it_size t.size);
        !stack <> []);
    next =
      (fun () ->
        let m = Api.Cell.read ~site:site_it_mod t.mod_count in
        if m <> expected then raise (Op.Concurrent_modification "TreeSet iterator");
        match !stack with
        | [] -> raise (Op.No_such_element "TreeSet iterator")
        | n :: rest ->
            stack := rest;
            push_left (Api.Cell.read ~site:site_it_link n.right);
            n.key);
  }

let to_list_dbg t =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let acc = go acc (Api.Cell.unsafe_peek n.right) in
        go (n.key :: acc) (Api.Cell.unsafe_peek n.left)
  in
  go [] (Api.Cell.unsafe_peek t.root)

let as_coll t : Jcoll.t =
  {
    Jcoll.cname = "TreeSet";
    monitor = t.monitor;
    size = (fun () -> size t);
    is_empty = (fun () -> is_empty t);
    add = (fun e -> add t e);
    remove = (fun e -> remove t e);
    contains = (fun e -> contains t e);
    clear = (fun () -> clear t);
    iterator = (fun () -> iterator t);
    to_list_dbg = (fun () -> to_list_dbg t);
    synchronized = false;
  }
