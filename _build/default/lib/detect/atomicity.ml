(** Potential atomicity-violation detection — the third problem class the
    paper's §1 says the random scheduler can be biased by ("potential
    atomicity violations", in the spirit of Atomizer [22] and AtomFuzzer).

    Target pattern: a thread reads a location inside one critical section
    of lock [L] and later writes (or re-reads) it inside a *different*
    critical section of the same lock — a split transaction — while some
    other thread writes the same location under [L].  If the interferer's
    write lands in the gap, the first thread acts on a stale value even
    though every access is perfectly lock-protected, so no race detector
    flags anything.

    Phase 1 (this module) reports candidate triples from one observed
    execution: the first section's access, the second section's re-entry
    statement, and the interfering write.  Phase 2
    ({!Racefuzzer.Atom_fuzzer}) schedules the gap. *)

open Rf_util
open Rf_events

type candidate = {
  av_lock : int;
  av_loc : Loc.t;  (** witness location *)
  first_site : Site.t;  (** access in the first critical section *)
  second_acquire : Site.t;  (** acquire statement of the second section *)
  interferer_site : Site.t;  (** conflicting write by another thread *)
  av_tid : int;  (** the split-transaction thread *)
  av_interferer : int;
}

let pp_candidate ppf c =
  Fmt.pf ppf
    "potential atomicity violation on %a under L%d: t%d splits %a / (reacquire %a), \
     t%d writes at %a"
    Loc.pp c.av_loc c.av_lock c.av_tid Site.pp c.first_site Site.pp c.second_acquire
    c.av_interferer Site.pp c.interferer_site

(* per (tid, lock): accesses made under that lock in the current critical
   section, and sections completed so far *)
type section = {
  mutable current : (Loc.t * Site.t * Event.access) list;  (* this section *)
  mutable past : (Loc.t * Site.t * Event.access) list;  (* earlier sections *)
  mutable in_section : bool;
}

type t = {
  sections : (int * int, section) Hashtbl.t;  (* (tid, lock) *)
  (* (lock, loc) -> writers under that lock, with sites *)
  writers : (int * Loc.t, (int * Site.t) list ref) Hashtbl.t;
  (* split transactions observed: (tid, lock, loc, first site, 2nd acquire) *)
  mutable splits : (int * int * Loc.t * Site.t * Site.t) list;
}

let create () = { sections = Hashtbl.create 32; writers = Hashtbl.create 64; splits = [] }

let section t tid lock =
  match Hashtbl.find_opt t.sections (tid, lock) with
  | Some s -> s
  | None ->
      let s = { current = []; past = []; in_section = false } in
      Hashtbl.add t.sections (tid, lock) s;
      s

let feed t ev =
  match ev with
  | Event.Acquire { tid; lock; site } ->
      let s = section t tid lock in
      s.in_section <- true;
      (* a re-acquire after earlier sections touching a location splits a
         transaction on that location *)
      List.iter
        (fun (loc, fsite, _) ->
          let key = (tid, lock, loc, fsite, site) in
          if not (List.mem key t.splits) then t.splits <- key :: t.splits)
        s.past
  | Event.Release { tid; lock; _ } ->
      let s = section t tid lock in
      s.in_section <- false;
      s.past <- s.current @ s.past;
      s.current <- []
  | Event.Mem { tid; site; loc; access; lockset } ->
      Lockset.to_list lockset
      |> List.iter (fun lock ->
             let s = section t tid lock in
             if s.in_section then s.current <- (loc, site, access) :: s.current;
             if Event.access_equal access Event.Write then begin
               let key = (lock, loc) in
               let ws =
                 match Hashtbl.find_opt t.writers key with
                 | Some r -> r
                 | None ->
                     let r = ref [] in
                     Hashtbl.add t.writers key r;
                     r
               in
               if not (List.mem (tid, site) !ws) then ws := (tid, site) :: !ws
             end)
  | _ -> ()

let candidates t : candidate list =
  let out = ref [] in
  List.iter
    (fun (tid, lock, loc, first_site, second_acquire) ->
      match Hashtbl.find_opt t.writers (lock, loc) with
      | None -> ()
      | Some ws ->
          List.iter
            (fun (wtid, wsite) ->
              if wtid <> tid then begin
                let c =
                  {
                    av_lock = lock;
                    av_loc = loc;
                    first_site;
                    second_acquire;
                    interferer_site = wsite;
                    av_tid = tid;
                    av_interferer = wtid;
                  }
                in
                let same a b =
                  a.av_lock = b.av_lock
                  && Site.equal a.first_site b.first_site
                  && Site.equal a.second_acquire b.second_acquire
                  && Site.equal a.interferer_site b.interferer_site
                in
                if not (List.exists (same c) !out) then out := c :: !out
              end)
            !ws)
    t.splits;
  List.rev !out
