test/test_events.ml: Alcotest Event Filename List Loc Lockset Printf QCheck QCheck_alcotest Rf_events Rf_util Serial Site Sys Trace
