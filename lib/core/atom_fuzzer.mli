(** Atomicity-directed random testing: phase 2 for
    {!Rf_detect.Atomicity} candidates, completing the trio of problem
    classes the paper's §1 names (races, atomicity violations, deadlocks).

    The strategy holds a thread postponed between the two halves of its
    split transaction until the interfering write is pending, then lands
    the write in the gap — an event-level witness that the transaction was
    not serializable.  Harmfulness surfaces as with races: through model
    assertions and uncaught exceptions in the subject program. *)

open Rf_runtime

type hit = { ah_candidate : Rf_detect.Atomicity.candidate; ah_step : int }

type report = {
  mutable ahits : hit list;
  mutable apostponed : int;
  mutable aevictions : int;
}

val fresh_report : unit -> report
val violation_created : report -> bool

val strategy :
  ?postpone_timeout:int option ->
  candidate:Rf_detect.Atomicity.candidate ->
  report:report ->
  unit ->
  Strategy.t

type candidate_result = {
  ac_candidate : Rf_detect.Atomicity.candidate;
  ac_trials : int;
  ac_violation_trials : int;
  ac_error_trials : int;  (** violating trials with an uncaught exception *)
  ac_probability : float;
  ac_seed : int option;
  ac_error_seed : int option;
}

val is_real : candidate_result -> bool
val is_harmful : candidate_result -> bool

val phase1 :
  ?seeds:int list ->
  ?record:bool ->
  (unit -> unit) ->
  Rf_detect.Atomicity.candidate list
(** One fresh detector per execution (section state is per-run), results
    deduplicated.  [record] (default false) runs each execution
    detector-free against a binary recording and replays it offline
    ({!Rf_detect.Offline.replay}) — same candidates, recording-mode cost
    profile.  Unlike race detection the offline pass is not sharded:
    atomicity section state spans locations. *)

val fuzz_candidate :
  ?seeds:int list ->
  program:(unit -> unit) ->
  Rf_detect.Atomicity.candidate ->
  candidate_result

val analyze :
  ?phase1_seeds:int list ->
  ?seeds_per_candidate:int list ->
  (unit -> unit) ->
  candidate_result list
