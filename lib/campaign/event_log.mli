(** Campaign observability: a structured progress/event stream.

    Every significant campaign step — trials starting and finishing, pairs
    getting resolved, budget moving between pairs — is an {!event}.  Sinks
    render events as JSONL (one JSON object per line, with a sequence
    number and seconds-since-start timestamp), so a campaign run can be
    tailed live or analyzed offline.  All sinks are safe to share between
    worker domains. *)

type event =
  | Campaign_started of {
      domains : int;
      base_trials : int;  (** trials initially granted per pair *)
      budget : int option;  (** total trial budget; [None] = pairs * base *)
      cutoff : bool;
    }
  | Phase1_finished of { potential : int; wall : float }
  | Wave_started of { wave : int; tasks : int }
  | Trial_started of { pair : string; seed : int; domain : int }
  | Trial_finished of {
      pair : string;
      seed : int;
      domain : int;
      race : bool;
      error : bool;  (** race created and an uncaught exception followed *)
      deadlock : bool;
      wall : float;
    }
  | Pair_resolved of { pair : string; at_trial : int }
      (** the pair is classified real and harmful by its trial prefix
          [0..at_trial]; queued trials past that index will be cancelled *)
  | Trials_cancelled of { pair : string; count : int }
  | Budget_granted of { pair : string; extra : int }
      (** trials freed by a resolved pair, reallocated to this one *)
  | Campaign_finished of {
      wall : float;
      trials : int;
      cancelled : int;
      throughput : float;  (** trials per second of phase-2 wall time *)
    }

val event_name : event -> string

val to_json : seq:int -> elapsed:float -> event -> string
(** One JSON object, no trailing newline. *)

(** {1 Sinks} *)

type t

val null : unit -> t
(** Drops everything (and skips rendering). *)

val to_channel : out_channel -> t
(** JSONL to a channel, flushed per line; the channel is not closed by
    {!close}. *)

val open_file : string -> t
(** JSONL to a fresh file, closed by {!close}. *)

val memory : unit -> t
(** Accumulates events in memory for tests; read back with {!events}. *)

val emit : t -> event -> unit
val events : t -> event list
(** Events seen so far, oldest first; [[]] for non-memory sinks. *)

val close : t -> unit
