(** Execution events, after the paper's model (§2.1): [MEM(s, m, a, t, L)]
    memory accesses plus [SND]/[RCV] synchronization messages (thread
    start, join, notify→wait), extended with lock acquire/release (used by
    the precise happens-before detector's edge policy) and thread
    start/exit markers. *)

open Rf_util

type access = Read | Write

val pp_access : Format.formatter -> access -> unit
val access_equal : access -> access -> bool

(** Why a [SND]/[RCV] pair exists. *)
type sync_reason = Fork | Join | Notify

val pp_sync_reason : Format.formatter -> sync_reason -> unit

type t =
  | Mem of {
      tid : int;
      site : Site.t;
      loc : Loc.t;
      access : access;
      lockset : Lockset.t;
    }  (** a shared-memory access, with the thread's lockset at that moment *)
  | Acquire of { tid : int; lock : int; site : Site.t }
      (** lockset grew (outermost acquire only; reentrant ones are silent) *)
  | Release of { tid : int; lock : int; site : Site.t }
      (** lockset shrank (innermost release only) *)
  | Snd of { tid : int; msg : int; reason : sync_reason }
  | Rcv of { tid : int; msg : int; reason : sync_reason }
  | Start of { tid : int; name : string }
  | Exit of { tid : int }

val tid : t -> int
val site : t -> Site.t option
val is_mem : t -> bool
val is_sync : t -> bool
val equal : t -> t -> bool

val hash_fold : int -> t -> int
(** Structural streaming hash: folds every field of the event into the
    accumulator with no input truncation.  Sites are hashed by their stable
    (file, line, col, label) key, not their registry id, so digests are
    stable across processes and site-interning orders (needed by the
    checked-in golden fingerprints the CI drift check compares against). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
