(** Locksets: the set of lock ids a thread holds at an event.  The hybrid
    race condition requires disjoint locksets ([Li ∩ Lj = ∅], paper §2.2);
    Eraser refines a candidate lockset per location by intersection. *)

type t

val empty : t
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val is_empty : t -> bool
val inter : t -> t -> t
val union : t -> t -> t

val disjoint : t -> t -> bool
(** No common lock: one clause of the hybrid race condition. *)

val of_list : int list -> t
val to_list : t -> int list
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
