(** Dynamic shared-memory locations.

    A [Loc.t] is the runtime address of one shared cell — the "dynamic shared
    memory location" the paper's [Racing] function compares (Algorithm 2).
    Two threads race only if their pending accesses touch the *same* dynamic
    location, so locations must distinguish distinct objects, fields and
    array elements.

    Object ids are drawn from a counter that the engine resets at the start
    of each run; since model code executes single-threaded under the
    cooperative scheduler, allocation order — and hence location identity —
    is deterministic for a given seed. *)

type t =
  | Global of string         (** a named shared global (DSL [shared] vars) *)
  | Field of int * string    (** field of a heap object: (object id, field) *)
  | Elem of int * int        (** array element: (array id, index) *)

(* Domain-local: each domain runs its own engine (parallel fuzzing spawns
   one engine per domain), and allocation order must stay deterministic
   within a run regardless of what sibling domains do. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_counter () = Domain.DLS.get counter := 0

let fresh_obj () =
  let c = Domain.DLS.get counter in
  let id = !c in
  incr c;
  id

let global name = Global name
let field obj name = Field (obj, name)
let elem arr idx = Elem (arr, idx)

let equal a b =
  match (a, b) with
  | Global x, Global y -> String.equal x y
  | Field (o1, f1), Field (o2, f2) -> o1 = o2 && String.equal f1 f2
  | Elem (a1, i1), Elem (a2, i2) -> a1 = a2 && i1 = i2
  | _ -> false

let compare a b =
  let tag = function Global _ -> 0 | Field _ -> 1 | Elem _ -> 2 in
  match (a, b) with
  | Global x, Global y -> String.compare x y
  | Field (o1, f1), Field (o2, f2) ->
      let c = Int.compare o1 o2 in
      if c <> 0 then c else String.compare f1 f2
  | Elem (a1, i1), Elem (a2, i2) ->
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare i1 i2
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | Global s -> Hashtbl.hash s
  | Field (o, f) -> (o * 65599) + Hashtbl.hash f
  | Elem (a, i) -> (a * 65599) + i + 17

let pp ppf = function
  | Global s -> Fmt.pf ppf "@%s" s
  | Field (o, f) -> Fmt.pf ppf "obj%d.%s" o f
  | Elem (a, i) -> Fmt.pf ppf "arr%d[%d]" a i

let to_string t = Fmt.str "%a" pp t

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
