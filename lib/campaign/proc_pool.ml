(* Multi-process campaign execution.

   The module is deliberately split down the pipe: the [Frame] / message
   codec in the middle, [worker_main] below it (runs in the child,
   stdin/stdout only), the pool at the bottom (runs in the supervisor,
   owns every fd, pid and timer).  Nothing here touches campaign pair
   state — the supervisor half surfaces plain events and the campaign
   merges them through the same record-replay path as a journal resume,
   which is the whole determinism story.

   Fault model: a worker can die at any byte boundary (SIGKILL, OOM via
   rlimit, CPU rlimit, exec failure), hang forever, or write garbage.
   Deaths are detected by EOF on the worker's stdout; hangs by the
   heartbeat deadline; garbage by the frame checksum.  All three funnel
   into one death path: SIGKILL (idempotent), waitpid (no zombies),
   surface the in-flight assignment for requeueing, schedule a respawn on
   the {!Supervisor} backoff curve. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Algo = Racefuzzer.Algo
module Outcome = Rf_runtime.Outcome
module Engine = Rf_runtime.Engine
module Governor = Rf_resource.Governor

(* ------------------------------------------------------------------ *)
(* Framing: the Btrace idiom over pipes.  u32:len | payload | u64:fnv. *)

module Frame = struct
  exception Corrupt of string

  let max_len = 16 * 1024 * 1024

  let encode payload =
    let len = String.length payload in
    let b = Buffer.create (len + 12) in
    Buffer.add_int32_le b (Int32.of_int len);
    Buffer.add_string b payload;
    Buffer.add_int64_le b (Fnv.hash64 payload);
    Buffer.contents b

  let decode buf =
    let avail = Buffer.length buf in
    if avail < 4 then None
    else begin
      let s = Buffer.contents buf in
      let len = Int32.to_int (String.get_int32_le s 0) in
      if len <= 0 || len > max_len then
        raise
          (Corrupt
             (Printf.sprintf "frame length %d out of range [1, %d] at offset 0"
                len max_len));
      let total = 4 + len + 8 in
      if avail < total then None
      else begin
        let payload = String.sub s 4 len in
        let stored = String.get_int64_le s (4 + len) in
        let computed = Fnv.hash64 payload in
        if not (Int64.equal stored computed) then
          raise
            (Corrupt
               (Printf.sprintf
                  "frame checksum mismatch at offset %d: stored %Lx, computed %Lx"
                  (4 + len) stored computed));
        Buffer.clear buf;
        Buffer.add_substring buf s total (avail - total);
        Some payload
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Payload codec: flat little-endian fields behind the frame checksum.
   The reader raises {!Frame.Corrupt} on truncation — a checksummed
   payload that still misparses means a protocol bug, and we want the
   precise offset, not a silent misread. *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_int b v = Buffer.add_int64_le b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_str b s =
  Buffer.add_int32_le b (Int32.of_int (String.length s));
  Buffer.add_string b s

let w_opt wf b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      wf b v

type reader = { r_s : string; mutable r_pos : int }

let reader s = { r_s = s; r_pos = 0 }

let need r n =
  if r.r_pos + n > String.length r.r_s then
    raise
      (Frame.Corrupt
         (Printf.sprintf "payload truncated at offset %d (need %d of %d bytes)"
            r.r_pos n
            (String.length r.r_s - r.r_pos)))

let r_u8 r =
  need r 1;
  let v = Char.code r.r_s.[r.r_pos] in
  r.r_pos <- r.r_pos + 1;
  v

let r_bool r = r_u8 r <> 0

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.r_s r.r_pos) in
  r.r_pos <- r.r_pos + 8;
  v

let r_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.r_s r.r_pos) in
  r.r_pos <- r.r_pos + 8;
  v

let r_str r =
  need r 4;
  let n = Int32.to_int (String.get_int32_le r.r_s r.r_pos) in
  if n < 0 || n > Frame.max_len then
    raise
      (Frame.Corrupt
         (Printf.sprintf "string length %d out of range at offset %d" n r.r_pos));
  r.r_pos <- r.r_pos + 4;
  need r n;
  let s = String.sub r.r_s r.r_pos n in
  r.r_pos <- r.r_pos + n;
  s

let r_opt rf r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (rf r)
  | t ->
      raise
        (Frame.Corrupt
           (Printf.sprintf "bad option tag %d at offset %d" t (r.r_pos - 1)))

(* ------------------------------------------------------------------ *)
(* Messages. *)

type init = {
  i_target : string;
  i_max_steps : int;
  i_postpone : int option option;
  i_detector_budget : int option;
  i_mem_budget : float option;
  i_no_degrade : bool;
  i_trial_wall : float option;
}

type assignment = {
  a_id : int;
  a_pair : Site.Pair.t;
  a_seed : int;
  a_crash : bool;
  a_stall : float;
  a_tripped : bool;
  a_die : bool;
  a_torn : bool;
  a_hang : bool;
}

type tresult =
  | T_finished of {
      t_race : bool;
      t_deadlock : bool;
      t_steps : int;
      t_switches : int;
      t_exns : int;
      t_wall : float;
      t_degraded : bool;
      t_level : string;
      t_trigger : string;
      t_evicted : int;
    }
  | T_crashed of { t_exn : string; t_backtrace : string }
  | T_exhausted of { t_reason : string; t_steps : int; t_wall : float }

let tag_init = 0x01
let tag_assign = 0x02
let tag_shutdown = 0x03
let tag_ready = 0x10
let tag_result = 0x11

let encode_init i =
  let b = Buffer.create 128 in
  w_u8 b tag_init;
  w_str b i.i_target;
  w_int b i.i_max_steps;
  (* [?postpone_timeout] is an optional argument of type [int option]:
     absent / Some None / Some (Some n) are three distinct campaign
     configurations, so the wire keeps all three. *)
  (match i.i_postpone with
  | None -> w_u8 b 0
  | Some None -> w_u8 b 1
  | Some (Some n) ->
      w_u8 b 2;
      w_int b n);
  w_opt w_int b i.i_detector_budget;
  w_opt w_f64 b i.i_mem_budget;
  w_bool b i.i_no_degrade;
  w_opt w_f64 b i.i_trial_wall;
  Buffer.contents b

let decode_init r =
  let i_target = r_str r in
  let i_max_steps = r_int r in
  let i_postpone =
    match r_u8 r with
    | 0 -> None
    | 1 -> Some None
    | 2 -> Some (Some (r_int r))
    | t ->
        raise
          (Frame.Corrupt (Printf.sprintf "bad postpone tag %d in init frame" t))
  in
  let i_detector_budget = r_opt r_int r in
  let i_mem_budget = r_opt r_f64 r in
  let i_no_degrade = r_bool r in
  let i_trial_wall = r_opt r_f64 r in
  { i_target; i_max_steps; i_postpone; i_detector_budget; i_mem_budget;
    i_no_degrade; i_trial_wall }

(* Sites cross the pipe as their structural interning key; the receiver
   re-interns with {!Site.make}, so site *ids* never appear on the wire
   (they are process-local). *)
let w_site b s =
  w_str b (Site.file s);
  w_int b (Site.line s);
  w_int b (Site.col s);
  w_str b (Site.label s)

let r_site r =
  let file = r_str r in
  let line = r_int r in
  let col = r_int r in
  let label = r_str r in
  Site.make ~file ~line ~col label

let encode_assign a =
  let b = Buffer.create 160 in
  w_u8 b tag_assign;
  w_int b a.a_id;
  w_site b (Site.Pair.fst a.a_pair);
  w_site b (Site.Pair.snd a.a_pair);
  w_int b a.a_seed;
  w_bool b a.a_crash;
  w_f64 b a.a_stall;
  w_bool b a.a_tripped;
  w_bool b a.a_die;
  w_bool b a.a_torn;
  w_bool b a.a_hang;
  Buffer.contents b

let decode_assign r =
  let a_id = r_int r in
  let s1 = r_site r in
  let s2 = r_site r in
  let a_seed = r_int r in
  let a_crash = r_bool r in
  let a_stall = r_f64 r in
  let a_tripped = r_bool r in
  let a_die = r_bool r in
  let a_torn = r_bool r in
  let a_hang = r_bool r in
  { a_id; a_pair = Site.Pair.make s1 s2; a_seed; a_crash; a_stall; a_tripped;
    a_die; a_torn; a_hang }

let encode_shutdown () = String.make 1 (Char.chr tag_shutdown)
let encode_ready () = String.make 1 (Char.chr tag_ready)

let encode_result ~id res =
  let b = Buffer.create 96 in
  w_u8 b tag_result;
  w_int b id;
  (match res with
  | T_finished f ->
      w_u8 b 0;
      w_bool b f.t_race;
      w_bool b f.t_deadlock;
      w_int b f.t_steps;
      w_int b f.t_switches;
      w_int b f.t_exns;
      w_f64 b f.t_wall;
      w_bool b f.t_degraded;
      w_str b f.t_level;
      w_str b f.t_trigger;
      w_int b f.t_evicted
  | T_crashed c ->
      w_u8 b 1;
      w_str b c.t_exn;
      w_str b c.t_backtrace
  | T_exhausted x ->
      w_u8 b 2;
      w_str b x.t_reason;
      w_int b x.t_steps;
      w_f64 b x.t_wall);
  Buffer.contents b

let decode_result r =
  let id = r_int r in
  let res =
    match r_u8 r with
    | 0 ->
        let t_race = r_bool r in
        let t_deadlock = r_bool r in
        let t_steps = r_int r in
        let t_switches = r_int r in
        let t_exns = r_int r in
        let t_wall = r_f64 r in
        let t_degraded = r_bool r in
        let t_level = r_str r in
        let t_trigger = r_str r in
        let t_evicted = r_int r in
        T_finished
          { t_race; t_deadlock; t_steps; t_switches; t_exns; t_wall;
            t_degraded; t_level; t_trigger; t_evicted }
    | 1 ->
        let t_exn = r_str r in
        let t_backtrace = r_str r in
        T_crashed { t_exn; t_backtrace }
    | 2 ->
        let t_reason = r_str r in
        let t_steps = r_int r in
        let t_wall = r_f64 r in
        T_exhausted { t_reason; t_steps; t_wall }
    | t -> raise (Frame.Corrupt (Printf.sprintf "bad result tag %d" t))
  in
  (id, res)

(* ------------------------------------------------------------------ *)
(* Shared fd plumbing. *)

let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> ()

let rec restart_read fd buf pos len =
  try Unix.read fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> restart_read fd buf pos len

(* Write everything or raise; EINTR restarted, EPIPE escapes to the
   caller (worker death on the supervisor side, supervisor death on the
   worker side — both handled there). *)
let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let reason_string = function
  | Outcome.Wall_deadline -> "wall deadline"
  | Outcome.Step_deadline -> "step deadline"
  | Outcome.Heap_watermark -> "heap watermark"
  | Outcome.Detector_budget -> "detector budget"

(* ------------------------------------------------------------------ *)
(* The worker half: stdin/stdout protocol loop. *)

let worker_main ~resolve () =
  (try ignore (Sys.signal Sys.sigint Sys.Signal_ignore) with _ -> ());
  ignore_sigpipe ();
  let inb = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  (* None = EOF (supervisor went away: orderly exit, never an orphan). *)
  let rec read_frame () =
    match Frame.decode inb with
    | Some p -> Some p
    | None ->
        let n = restart_read Unix.stdin chunk 0 (Bytes.length chunk) in
        if n = 0 then None
        else begin
          Buffer.add_subbytes inb chunk 0 n;
          read_frame ()
        end
  in
  (* The supervisor closing our stdin mid-write surfaces as EPIPE: it has
     already decided we are dead, so just leave quietly. *)
  let send payload =
    try write_all Unix.stdout (Frame.encode payload)
    with Unix.Unix_error (Unix.EPIPE, _, _) -> exit 0
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        prerr_endline ("campaign-worker: " ^ msg);
        exit 2)
      fmt
  in
  let init =
    match (try read_frame () with Frame.Corrupt m -> fail "corrupt init frame: %s" m) with
    | None -> fail "eof before init frame"
    | Some payload ->
        let r = reader payload in
        (match r_u8 r with
        | t when t = tag_init -> decode_init r
        | t -> fail "expected init frame, got tag 0x%02x" t)
  in
  let program =
    match resolve init.i_target with
    | Some p -> p
    | None -> fail "cannot resolve target %S" init.i_target
  in
  send (encode_ready ());
  (* Mirror of the campaign's in-process trial path ([Campaign.process]):
     same governor construction, same heap-hook ladder, same injection
     order, same sandbox — byte-identical results are the contract. *)
  let run_assignment a =
    let label = Site.Pair.to_string a.a_pair in
    let governor =
      if init.i_detector_budget = None && init.i_mem_budget = None
         && not a.a_tripped
      then None
      else
        Some
          (Governor.create ?max_entries:init.i_detector_budget
             ~no_degrade:init.i_no_degrade ())
    in
    let heap_hook =
      Option.map
        (fun g () ->
          if Governor.level g = Governor.Lockset_only then false
          else begin
            Governor.trip g Governor.Heap_watermark;
            true
          end)
        governor
    in
    let deadline =
      match (init.i_trial_wall, init.i_mem_budget) with
      | None, None -> None
      | wall, heap_mb -> Some (Engine.deadline ?wall ?heap_mb ?heap_hook ())
    in
    let chaos_inject () =
      if a.a_stall > 0.0 then Unix.sleepf a.a_stall;
      if a.a_crash then
        raise
          (Chaos.Injected_crash
             (Printf.sprintf "chaos: injected crash (%s seed %d)" label a.a_seed))
    in
    let inject =
      match governor with
      | Some g when a.a_tripped ->
          fun () ->
            chaos_inject ();
            Governor.trip g Governor.Injected
      | _ -> chaos_inject
    in
    let res =
      Fuzzer.run_trial ?postpone_timeout:init.i_postpone ?deadline ?governor
        ~inject ~max_steps:init.i_max_steps ~program a.a_pair a.a_seed
    in
    match res with
    | Fuzzer.Completed tr ->
        let o = tr.Fuzzer.t_outcome in
        let dg = tr.Fuzzer.t_degraded in
        T_finished
          {
            t_race = Algo.race_created tr.Fuzzer.t_report;
            t_deadlock = Outcome.deadlocked o;
            t_steps = o.Outcome.steps;
            t_switches = o.Outcome.switches;
            t_exns = List.length o.Outcome.exceptions;
            t_wall = o.Outcome.wall_time;
            t_degraded = dg <> None;
            t_level =
              (match dg with
              | Some s -> Governor.level_to_string s.Governor.g_level
              | None -> "full");
            t_trigger =
              (match dg with
              | Some { Governor.g_trigger = Some tg; _ } ->
                  Governor.trigger_to_string tg
              | _ -> "");
            t_evicted =
              (match dg with Some s -> s.Governor.g_evicted | None -> 0);
          }
    | Fuzzer.Harness_crash (e, bt) ->
        T_crashed { t_exn = Printexc.to_string e; t_backtrace = bt }
    | Fuzzer.Budget_exhausted { bx_reason; bx_steps; bx_wall; _ } ->
        T_exhausted
          { t_reason = reason_string bx_reason; t_steps = bx_steps;
            t_wall = bx_wall }
  in
  let rec loop () =
    match
      (try read_frame ()
       with Frame.Corrupt m -> fail "corrupt frame from supervisor: %s" m)
    with
    | None -> exit 0
    | Some payload ->
        let r = reader payload in
        (match r_u8 r with
        | t when t = tag_shutdown -> exit 0
        | t when t = tag_assign ->
            let a = decode_assign r in
            if a.a_die then Unix.kill (Unix.getpid ()) Sys.sigkill;
            if a.a_hang then
              while true do
                Unix.sleepf 3600.0
              done;
            let result = run_assignment a in
            let payload = encode_result ~id:a.a_id result in
            if a.a_torn then begin
              (* Flip the last checksum byte: the supervisor must raise
                 [Frame.Corrupt], never accept the result. *)
              let torn = Bytes.of_string (Frame.encode payload) in
              let last = Bytes.length torn - 1 in
              Bytes.set torn last
                (Char.chr (Char.code (Bytes.get torn last) lxor 0xff));
              (try write_all Unix.stdout (Bytes.to_string torn)
               with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
              exit 0
            end;
            send payload;
            loop ()
        | t -> fail "unexpected frame tag 0x%02x" t)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The supervisor half. *)

type spec = {
  sp_cmd : string array;
  sp_workers : int;
  sp_heartbeat : float;
  sp_rlimit_as_mb : int option;
  sp_rlimit_cpu_s : int option;
  sp_policy : Supervisor.policy;
  sp_target : string;
}

let default_heartbeat = 30.0

type wstate =
  | Spawning  (** init sent, Ready not yet received *)
  | Idle
  | Busy of assignment
  | Backoff of float  (** dead; respawn due at this absolute time *)
  | Gone  (** dead; respawn budget exhausted *)

type wrk = {
  w_id : int;
  mutable w_pid : int;  (** -1 when no live process *)
  mutable w_rd : Unix.file_descr;  (** worker's stdout, supervisor reads *)
  mutable w_wr : Unix.file_descr;  (** worker's stdin, supervisor writes *)
  w_buf : Buffer.t;
  mutable w_state : wstate;
  mutable w_last : float;  (** last inbound byte (heartbeat basis) *)
  mutable w_attempt : int;  (** respawns consumed *)
}

type event =
  | Ev_ready of { ev_worker : int; ev_pid : int }
  | Ev_result of { ev_worker : int; ev_id : int; ev_result : tresult }
  | Ev_died of {
      ev_worker : int;
      ev_pid : int;
      ev_in_flight : int option;
      ev_reason : string;
      ev_killed : bool;
      ev_respawning : bool;
    }
  | Ev_respawned of { ev_worker : int; ev_pid : int; ev_attempt : int; ev_backoff : float }
  | Ev_gave_up of int

type t = {
  spec : spec;
  init_frame : string;
  workers : wrk array;
  pending : event Queue.t;
      (** events observed by internal polls ({!await_ready}) and handed to
          the caller on the next {!poll} *)
}

(* Per-worker rlimits without setrlimit bindings: spawn through the
   shell's ulimit builtin, [exec]ing the real binary so the pid we hold
   is the worker itself (kill/waitpid stay valid). *)
let spawn_argv spec =
  match (spec.sp_rlimit_as_mb, spec.sp_rlimit_cpu_s) with
  | None, None -> spec.sp_cmd
  | as_mb, cpu_s ->
      let limits =
        List.filter_map Fun.id
          [
            Option.map
              (fun mb -> Printf.sprintf "ulimit -v %d 2>/dev/null" (mb * 1024))
              as_mb;
            Option.map
              (fun s -> Printf.sprintf "ulimit -t %d 2>/dev/null" s)
              cpu_s;
          ]
      in
      let script = String.concat "; " (limits @ [ "exec \"$@\"" ]) in
      Array.append [| "/bin/sh"; "-c"; script; "sh" |] spec.sp_cmd

let now () = Unix.gettimeofday ()

let spawn t w =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  (* Supervisor ends must not leak into workers: a sibling holding our
     write end would defeat EOF-based death detection. *)
  Unix.set_close_on_exec stdin_w;
  Unix.set_close_on_exec stdout_r;
  let argv = spawn_argv t.spec in
  let pid = Unix.create_process argv.(0) argv stdin_r stdout_w Unix.stderr in
  Unix.close stdin_r;
  Unix.close stdout_w;
  w.w_pid <- pid;
  w.w_rd <- stdout_r;
  w.w_wr <- stdin_w;
  Buffer.clear w.w_buf;
  w.w_state <- Spawning;
  w.w_last <- now ();
  (* An exec failure shows up as EPIPE here or EOF at the next poll —
     either way the death path handles it; don't die with the worker. *)
  (try write_all w.w_wr t.init_frame
   with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ())

let create spec ~init =
  ignore_sigpipe ();
  let t =
    {
      spec;
      init_frame = Frame.encode (encode_init init);
      workers =
        Array.init (max 1 spec.sp_workers) (fun i ->
            {
              w_id = i;
              w_pid = -1;
              w_rd = Unix.stdin;
              w_wr = Unix.stdout;
              w_buf = Buffer.create 4096;
              w_state = Gone;
              w_last = 0.0;
              w_attempt = 0;
            });
      pending = Queue.create ();
    }
  in
  Array.iter (fun w -> spawn t w) t.workers;
  t

let live w = match w.w_state with Spawning | Idle | Busy _ -> true | _ -> false

let close_fds w =
  (try Unix.close w.w_rd with Unix.Unix_error _ -> ());
  try Unix.close w.w_wr with Unix.Unix_error _ -> ()

let reap w =
  if w.w_pid > 0 then begin
    (* SIGKILL first, unconditionally: waitpid must never block on a
       worker that closed its pipes but kept running. *)
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
    w.w_pid <- -1
  end

(* The single death path: every detection route (EOF, corrupt frame,
   heartbeat kill, shutdown sweep) funnels here. *)
let kill_worker t w ~killed ~reason events =
  let pid = w.w_pid in
  let in_flight = match w.w_state with Busy a -> Some a.a_id | _ -> None in
  close_fds w;
  reap w;
  let respawning = w.w_attempt < t.spec.sp_policy.Supervisor.max_respawns in
  if respawning then begin
    let delay = Supervisor.backoff_delay t.spec.sp_policy w.w_attempt in
    w.w_attempt <- w.w_attempt + 1;
    w.w_state <- Backoff (now () +. delay)
  end
  else w.w_state <- Gone;
  events :=
    Ev_died
      { ev_worker = w.w_id; ev_pid = pid; ev_in_flight = in_flight;
        ev_reason = reason; ev_killed = killed; ev_respawning = respawning }
    :: !events;
  if not respawning then events := Ev_gave_up w.w_id :: !events

let drain_frames w events =
  let rec go () =
    match Frame.decode w.w_buf with
    | None -> ()
    | Some payload ->
        let r = reader payload in
        (match r_u8 r with
        | tag when tag = tag_ready ->
            (match w.w_state with Spawning -> w.w_state <- Idle | _ -> ());
            events := Ev_ready { ev_worker = w.w_id; ev_pid = w.w_pid } :: !events;
            go ()
        | tag when tag = tag_result ->
            let id, res = decode_result r in
            (match w.w_state with Busy _ -> w.w_state <- Idle | _ -> ());
            events :=
              Ev_result { ev_worker = w.w_id; ev_id = id; ev_result = res }
              :: !events;
            go ()
        | tag ->
            raise
              (Frame.Corrupt (Printf.sprintf "unexpected frame tag 0x%02x" tag)))
  in
  go ()

let poll_once t ~timeout events =
  let t_now = now () in
  (* 1. due respawns *)
  Array.iter
    (fun w ->
      match w.w_state with
      | Backoff due when t_now >= due ->
          spawn t w;
          events :=
            Ev_respawned
              { ev_worker = w.w_id; ev_pid = w.w_pid; ev_attempt = w.w_attempt;
                ev_backoff = 0.0 }
            :: !events
      | _ -> ())
    t.workers;
  (* 2. multiplex live pipes *)
  let fds =
    Array.to_list t.workers
    |> List.filter_map (fun w -> if live w then Some w.w_rd else None)
  in
  let readable =
    if fds = [] then []
    else
      match Unix.select fds [] [] timeout with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  let chunk = Bytes.create 65536 in
  Array.iter
    (fun w ->
      if live w && List.memq w.w_rd readable then
        match restart_read w.w_rd chunk 0 (Bytes.length chunk) with
        | 0 -> kill_worker t w ~killed:false ~reason:"worker closed its pipe" events
        | exception Unix.Unix_error _ ->
            kill_worker t w ~killed:false ~reason:"worker pipe read error" events
        | n -> (
            Buffer.add_subbytes w.w_buf chunk 0 n;
            w.w_last <- now ();
            match drain_frames w events with
            | () -> ()
            | exception Frame.Corrupt msg ->
                kill_worker t w ~killed:true
                  ~reason:(Printf.sprintf "corrupt IPC frame: %s" msg)
                  events))
    t.workers;
  (* 3. heartbeat: a busy worker silent past the deadline is hung *)
  let t_now = now () in
  Array.iter
    (fun w ->
      match w.w_state with
      | Busy _ when t_now -. w.w_last > t.spec.sp_heartbeat ->
          kill_worker t w ~killed:true
            ~reason:
              (Printf.sprintf "heartbeat deadline (%.1fs) exceeded"
                 t.spec.sp_heartbeat)
            events
      | _ -> ())
    t.workers

let poll t ~timeout =
  let events = ref [] in
  poll_once t ~timeout events;
  let pending = Queue.fold (fun acc e -> e :: acc) [] t.pending in
  Queue.clear t.pending;
  List.rev_append pending (List.rev !events)

let await_ready t ~timeout =
  let deadline = now () +. timeout in
  let rec go () =
    let any_idle =
      Array.exists
        (fun w -> match w.w_state with Idle | Busy _ -> true | _ -> false)
        t.workers
    in
    if any_idle then true
    else if Array.for_all (fun w -> w.w_state = Gone) t.workers then false
    else if now () >= deadline then false
    else begin
      let events = ref [] in
      poll_once t ~timeout:(min 0.05 (max 0.0 (deadline -. now ()))) events;
      List.iter (fun e -> Queue.add e t.pending) (List.rev !events);
      go ()
    end
  in
  go ()

let idle_workers t =
  Array.to_list t.workers
  |> List.filter_map (fun w ->
         match w.w_state with Idle -> Some w.w_id | _ -> None)

let alive t = Array.fold_left (fun n w -> if live w then n + 1 else n) 0 t.workers

let gone t = Array.for_all (fun w -> w.w_state = Gone) t.workers

let assign t ~worker a =
  let w = t.workers.(worker) in
  (match w.w_state with
  | Idle -> ()
  | _ -> invalid_arg "Proc_pool.assign: worker not idle");
  w.w_state <- Busy a;
  w.w_last <- now ();
  try write_all w.w_wr (Frame.encode (encode_assign a))
  with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
    (* Worker died under us; the next poll's EOF requeues this id. *)
    ()

let shutdown t ~grace =
  (* Orderly half: Shutdown frames to workers with no assignment... *)
  Array.iter
    (fun w ->
      if live w then
        try write_all w.w_wr (Frame.encode (encode_shutdown ()))
        with Unix.Unix_error _ -> ())
    t.workers;
  let deadline = now () +. grace in
  let rec wait_voluntary () =
    let still = Array.exists (fun w -> live w && w.w_pid > 0) t.workers in
    if still && now () < deadline then begin
      Array.iter
        (fun w ->
          if live w && w.w_pid > 0 then
            match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
            | 0, _ -> ()
            | _ -> begin
                close_fds w;
                w.w_pid <- -1;
                w.w_state <- Gone
              end
            | exception Unix.Unix_error _ -> begin
                close_fds w;
                w.w_pid <- -1;
                w.w_state <- Gone
              end)
        t.workers;
      if Array.exists (fun w -> live w && w.w_pid > 0) t.workers then begin
        Unix.sleepf 0.01;
        wait_voluntary ()
      end
    end
  in
  if grace > 0.0 then wait_voluntary ();
  (* ...then the certain half: SIGKILL + reap everything left, including
     Backoff slots that still have a dead-but-unreaped pid (there are
     none — the death path reaps — but belt and braces). *)
  Array.iter
    (fun w ->
      if w.w_pid > 0 then begin
        close_fds w;
        reap w
      end;
      w.w_state <- Gone)
    t.workers

let kill_all t = shutdown t ~grace:0.0

let pids t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if w.w_pid > 0 then Some w.w_pid else None)
