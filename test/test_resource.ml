(* The @stress tier: resource governance and crash-safe artifacts.

   1. Governor unit behaviour: the degradation ladder steps Full ->
      Sampled -> Lockset_only, accounting (charge/credit/evict) is exact,
      no_degrade raises Budget_stop instead of degrading.
   2. QCheck over adversarial stress programs: governed phase-1 detection
      (a) never holds more than its entry budget, (b) is deterministic —
      same seed, same final ladder level, same potential pairs, same
      campaign fingerprint on any domain count — and (c) under
      ~no_degrade stops with Budget_stop rather than degrading.
   3. Crash-safe artifacts: SIGKILL during an atomic write leaves the old
      file intact (never a torn one); an in-place corrupted journal line
      is checksum-detected, skipped and counted, and a resumed campaign
      still fingerprints identically to an uninterrupted one.
   4. Chaos budget trips mark trials degraded deterministically, so
      kill/resume and cross-domain fingerprints cover degraded trials. *)

open Rf_util
module Governor = Rf_resource.Governor
module Atomic_file = Rf_util.Atomic_file
module Fuzzer = Racefuzzer.Fuzzer
module Campaign = Rf_campaign.Campaign
module Event_log = Rf_campaign.Event_log
module Chaos = Rf_campaign.Chaos
module W = Rf_workloads

(* ------------------------------------------------------------------ *)
(* 1. Governor unit behaviour                                          *)

let test_ladder_steps () =
  let g = Governor.create ~max_entries:10 () in
  (* a subscriber that sheds everything: accounting stays consistent *)
  let shed = ref 0 in
  Governor.subscribe g (fun _level ->
      let n = Governor.entries g in
      Governor.evict g n;
      shed := !shed + n);
  Alcotest.(check bool) "starts Full" true (Governor.level g = Governor.Full);
  Governor.charge g 10;
  Alcotest.(check bool) "at budget stays Full" true (Governor.level g = Governor.Full);
  Governor.charge g 1;
  Alcotest.(check bool) "over budget -> Sampled" true
    (Governor.level g = Governor.Sampled);
  Governor.charge g 11;
  Alcotest.(check bool) "second trip -> Lockset_only" true
    (Governor.level g = Governor.Lockset_only);
  Governor.charge g 11;
  Alcotest.(check bool) "bottom rung holds" true
    (Governor.level g = Governor.Lockset_only);
  let s = Governor.snapshot g in
  Alcotest.(check int) "trips counted" 3 s.Governor.g_trips;
  Alcotest.(check int) "evictions accounted" !shed s.Governor.g_evicted;
  Alcotest.(check int) "shed everything each trip" 0 s.Governor.g_entries;
  Alcotest.(check bool) "peak seen" true (s.Governor.g_peak >= 11);
  Alcotest.(check bool) "first trigger recorded" true
    (s.Governor.g_trigger = Some Governor.Entry_budget)

let test_accounting () =
  let g = Governor.unlimited () in
  Governor.charge g 7;
  Governor.credit g 3;
  Alcotest.(check int) "charge - credit" 4 (Governor.entries g);
  Governor.charge g 100_000;
  Alcotest.(check bool) "unlimited never trips" true
    ((Governor.level g = Governor.Full) && not (Governor.degraded g))

let test_no_degrade_raises () =
  let g = Governor.create ~max_entries:5 ~no_degrade:true () in
  Governor.charge g 5;
  match Governor.charge g 1 with
  | () -> Alcotest.fail "expected Budget_stop"
  | exception Governor.Budget_stop t ->
      Alcotest.(check bool) "trigger is entry budget" true (t = Governor.Entry_budget)

let test_string_round_trips () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "level round-trips" true
        (Governor.level_of_string (Governor.level_to_string l) = Some l))
    [ Governor.Full; Governor.Sampled; Governor.Lockset_only ];
  List.iter
    (fun t ->
      Alcotest.(check bool) "trigger round-trips" true
        (Governor.trigger_of_string (Governor.trigger_to_string t) = Some t))
    [ Governor.Entry_budget; Governor.Heap_watermark; Governor.Injected ]

(* ------------------------------------------------------------------ *)
(* 2. Governed detection over adversarial programs                     *)

let stress_pool : (string * (unit -> unit)) list =
  [
    ("threads", W.Stress.thread_storm ~threads:12 ~writes:2);
    ("locks", W.Stress.lock_churn ~locks:64 ~rounds:1);
    ("hotloc", W.Stress.hot_location ~threads:8 ~rounds:8);
    ("sweep", W.Stress.address_sweep ~locs:4096 ~overlap:64);
  ]

let gen_case =
  QCheck.Gen.(
    let* wi = int_bound (List.length stress_pool - 1) in
    let* budget = map (fun n -> 64 + (n mod 448)) nat in
    let* seed = int_bound 1000 in
    return (wi, budget, seed))

let arb_case =
  QCheck.make
    ~print:(fun (wi, budget, seed) ->
      Printf.sprintf "workload=%s budget=%d seed=%d"
        (fst (List.nth stress_pool wi))
        budget seed)
    gen_case

(* (a) The budget is respected: after any governed phase 1, the charged
   entries never exceed the budget (compaction sheds to half of it; a
   trip fires the moment a charge crosses it). *)
let prop_budget_respected =
  QCheck.Test.make ~name:"governed phase 1 stays within its entry budget"
    ~count:24 arb_case (fun (wi, budget, seed) ->
      let _, program = List.nth stress_pool wi in
      let g = Governor.create ~max_entries:budget () in
      let p1 = Fuzzer.phase1 ~seeds:[ seed ] ~governor:g program in
      ignore (Fuzzer.potential_pairs p1);
      let s = Governor.snapshot g in
      s.Governor.g_entries <= budget)

(* (b) Degraded runs are deterministic: same seed, same final ladder
   level, same eviction count, same potential set. *)
let prop_degraded_deterministic =
  QCheck.Test.make ~name:"same seed -> same ladder level and potential set"
    ~count:16 arb_case (fun (wi, budget, seed) ->
      let _, program = List.nth stress_pool wi in
      let once () =
        let g = Governor.create ~max_entries:budget () in
        let p1 = Fuzzer.phase1 ~seeds:[ seed ] ~governor:g program in
        (Fuzzer.potential_pairs p1, Governor.snapshot g)
      in
      let pairs1, s1 = once () in
      let pairs2, s2 = once () in
      Site.Pair.Set.equal pairs1 pairs2
      && s1.Governor.g_level = s2.Governor.g_level
      && s1.Governor.g_evicted = s2.Governor.g_evicted
      && s1.Governor.g_trips = s2.Governor.g_trips)

(* (c) no_degrade converts the first trip into Budget_stop. *)
let prop_no_degrade_stops =
  QCheck.Test.make ~name:"~no_degrade raises Budget_stop when tripping"
    ~count:16 arb_case (fun (wi, budget, seed) ->
      let _, program = List.nth stress_pool wi in
      (* would this (workload, budget, seed) trip at all? *)
      let g = Governor.create ~max_entries:budget () in
      ignore (Fuzzer.phase1 ~seeds:[ seed ] ~governor:g program);
      let trips = Governor.degraded g in
      let g' = Governor.create ~max_entries:budget ~no_degrade:true () in
      match Fuzzer.phase1 ~seeds:[ seed ] ~governor:g' program with
      | _ -> not trips  (* must only complete when the budget never trips *)
      | exception Governor.Budget_stop _ -> trips)

(* Campaign-level: governed end-to-end runs fingerprint identically on
   any domain count, and degraded trials (from chaos budget trips) are
   counted and preserved across the comparison. *)
let test_campaign_governed_domain_invariant () =
  let program = W.Figure1.program in
  let chaos = Chaos.plan ~budget_rate:1.0 7 in
  let run domains =
    Campaign.run ~domains ~phase1_seeds:[ 0 ] ~seeds_per_pair:[ 0; 1; 2; 3 ]
      ~chaos ~detector_budget:100_000 program
  in
  let r1 = run 1 in
  let r4 = run 4 in
  Alcotest.(check string) "fingerprints equal across domains"
    (Campaign.fingerprint r1.Campaign.analysis)
    (Campaign.fingerprint r4.Campaign.analysis);
  Alcotest.(check bool) "budget_rate=1.0 degrades every executed trial" true
    (r1.Campaign.stats.Campaign.s_degraded > 0);
  Alcotest.(check int) "same degraded count" r1.Campaign.stats.Campaign.s_degraded
    r4.Campaign.stats.Campaign.s_degraded

(* ------------------------------------------------------------------ *)
(* 3a. SIGKILL during an atomic write never tears the artifact          *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The child half: re-exec this test binary with [RF_STALL_WRITE=path]
   (see the guard above [Alcotest.run]) and it performs an atomic
   overwrite that stalls with bytes already flushed to the temp file —
   the worst possible kill point.  A separate process because
   [Unix.fork] is unavailable once campaign tests have spawned domains,
   and because a real SIGKILL (not an exception) is the point. *)
let stall_write_child path =
  (try
     Atomic_file.write path (fun oc ->
         output_string oc "torn-";
         flush oc;
         Unix.sleepf 30.0;
         output_string oc "never-written")
   with _ -> ());
  exit 0

let test_kill_during_write () =
  let path = Filename.temp_file "rf_atomic" ".dat" in
  let old_content = "old-but-complete" in
  Atomic_file.write_string path old_content;
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      (Array.append (Unix.environment ()) [| "RF_STALL_WRITE=" ^ path |])
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* wait until the child has the temp file open with bytes in it *)
  let tmp = path ^ ".tmp" in
  let rec settle n =
    let started =
      Sys.file_exists tmp && (try (Unix.stat tmp).Unix.st_size > 0 with _ -> false)
    in
    if (not started) && n > 0 then begin
      Unix.sleepf 0.05;
      settle (n - 1)
    end
  in
  settle 100;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Alcotest.(check string) "old artifact intact after SIGKILL mid-write"
    old_content (read_file path);
  (* recovery: the next write simply succeeds over the stale temp file *)
  Atomic_file.write_string path "recovered";
  Alcotest.(check string) "next write wins" "recovered" (read_file path);
  Sys.remove path;
  if Sys.file_exists tmp then Sys.remove tmp

let test_schedule_save_is_atomic () =
  (* Schedule.save goes through the same temp-and-rename path; prove the
     wiring by interposing a kill between the temp write and a reload. *)
  let dir = Filename.temp_file "rf_sched" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "witness.sched.json" in
  let _, sched =
    Fuzzer.record_trial ~target:"figure1" ~max_steps:100_000
      ~program:W.Figure1.program W.Figure1.real_pair 1
  in
  Rf_replay.Schedule.save path sched;
  let reloaded = Rf_replay.Schedule.load path in
  Alcotest.(check int) "round-trips through the atomic path"
    (Array.length sched.Rf_replay.Schedule.steps)
    (Array.length reloaded.Rf_replay.Schedule.steps);
  (* a torn file (what save can no longer produce) is a typed load error *)
  let torn = Filename.concat dir "torn.sched.json" in
  let oc = open_out torn in
  output_string oc (String.sub (Rf_replay.Schedule.to_json sched) 0 40);
  close_out oc;
  (match Rf_replay.Schedule.load torn with
  | _ -> Alcotest.fail "torn schedule loaded"
  | exception Rf_replay.Schedule.Format_error m ->
      Alcotest.(check bool) "error names the file" true
        (String.length m >= String.length torn
        && String.sub m 0 (String.length torn) = torn));
  Sys.remove path;
  Sys.remove torn;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* 3b. Corrupt journal lines: detected, skipped, counted                *)

let test_seal_detects_corruption () =
  let line = {|{"seq":1,"t":0.5,"ev":"trial_started","pair":"(a, b)","seed":3}|} in
  let sealed = Event_log.seal line in
  Alcotest.(check bool) "sealed line verifies" true
    (Event_log.check_seal sealed = Event_log.Sealed_ok);
  Alcotest.(check bool) "unsealed line is Unsealed" true
    (Event_log.check_seal line = Event_log.Unsealed);
  (* flip a char that cannot appear in the hex crc, so only the payload
     changes and the mismatch is guaranteed *)
  let corrupt = String.map (fun c -> if c = 'q' then 'x' else c) sealed in
  Alcotest.(check bool) "in-place corruption detected" true
    (Event_log.check_seal corrupt = Event_log.Sealed_bad)

let test_corrupt_journal_line_skipped () =
  let path = Filename.temp_file "rf_journal" ".jsonl" in
  let log = Event_log.open_file path in
  let trial seed =
    Event_log.Trial_finished
      {
        pair = "(a, b)";
        seed;
        domain = 0;
        race = seed mod 2 = 0;
        error = false;
        deadlock = false;
        steps = 10 + seed;
        switches = 2;
        exns = 0;
        wall = 0.1;
        degraded = false;
        level = "full";
        trigger = "";
        evicted = 0;
      }
  in
  List.iter (Event_log.emit log) [ trial 0; trial 1; trial 2 ];
  Event_log.close log;
  (* corrupt the middle record in place, preserving line structure *)
  let lines = String.split_on_char '\n' (read_file path) in
  let lines =
    List.mapi
      (fun i l ->
        if i = 2 then
          String.map (fun c -> if c = '1' then '7' else c) l
        else l)
      lines
  in
  let oc = open_out path in
  output_string oc (String.concat "\n" lines);
  close_out oc;
  let events, skipped = Event_log.load_result path in
  Sys.remove path;
  Alcotest.(check int) "one line skipped" 1 skipped;
  let finished =
    List.filter (function Event_log.Trial_finished _ -> true | _ -> false) events
  in
  Alcotest.(check int) "the other records survive" 2 (List.length finished)

(* ------------------------------------------------------------------ *)
(* 4. Kill/resume with chaos budget trips: degraded trials replay       *)

let test_resume_preserves_degraded_trials () =
  let program = W.Figure1.program in
  let chaos stop_after = Chaos.plan ?stop_after ~budget_rate:0.5 3 in
  let seeds = List.init 8 Fun.id in
  let full =
    Campaign.run ~domains:2 ~phase1_seeds:[ 0 ] ~seeds_per_pair:seeds
      ~chaos:(chaos None) ~detector_budget:100_000 program
  in
  let journal = Filename.temp_file "rf_resume" ".jsonl" in
  let log = Event_log.open_file journal in
  let interrupted =
    Campaign.run ~domains:2 ~phase1_seeds:[ 0 ] ~seeds_per_pair:seeds
      ~chaos:(chaos (Some 3)) ~detector_budget:100_000 ~log program
  in
  Event_log.close log;
  Alcotest.(check bool) "interrupted run stopped early" true
    interrupted.Campaign.stats.Campaign.s_interrupted;
  let resumed =
    Campaign.run ~domains:2 ~phase1_seeds:[ 0 ] ~seeds_per_pair:seeds
      ~chaos:(chaos None) ~detector_budget:100_000 ~resume:journal program
  in
  Sys.remove journal;
  Alcotest.(check bool) "resume replayed journal trials" true
    (resumed.Campaign.stats.Campaign.s_replayed > 0);
  Alcotest.(check string) "resumed fingerprint = uninterrupted fingerprint"
    (Campaign.fingerprint full.Campaign.analysis)
    (Campaign.fingerprint resumed.Campaign.analysis);
  Alcotest.(check int) "degraded trials preserved across resume"
    full.Campaign.stats.Campaign.s_degraded
    resumed.Campaign.stats.Campaign.s_degraded

(* Child-process entry for the kill-during-write test: when re-exec'd
   with RF_STALL_WRITE set, stall inside an atomic write instead of
   running the suites. *)
let () =
  match Sys.getenv_opt "RF_STALL_WRITE" with
  | Some path -> stall_write_child path
  | None -> ()

let () =
  Alcotest.run "resource"
    [
      ( "governor",
        [
          Alcotest.test_case "ladder steps and accounting" `Quick test_ladder_steps;
          Alcotest.test_case "charge/credit arithmetic" `Quick test_accounting;
          Alcotest.test_case "no_degrade raises Budget_stop" `Quick
            test_no_degrade_raises;
          Alcotest.test_case "level/trigger strings round-trip" `Quick
            test_string_round_trips;
        ] );
      ( "governed-detection",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_budget_respected;
            prop_degraded_deterministic;
            prop_no_degrade_stops;
          ] );
      ( "campaign",
        [
          Alcotest.test_case "governed fingerprints domain-invariant" `Quick
            test_campaign_governed_domain_invariant;
          Alcotest.test_case "resume preserves degraded trials" `Quick
            test_resume_preserves_degraded_trials;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "SIGKILL mid-write leaves old artifact" `Quick
            test_kill_during_write;
          Alcotest.test_case "schedule save is atomic + typed errors" `Quick
            test_schedule_save_is_atomic;
          Alcotest.test_case "seal detects corruption" `Quick
            test_seal_detects_corruption;
          Alcotest.test_case "corrupt journal line skipped + counted" `Quick
            test_corrupt_journal_line_skipped;
        ] );
    ]
