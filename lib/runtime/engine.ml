(** The cooperative scheduling engine.

    Executes a model program (a [unit -> unit] main that may fork further
    threads) under full scheduler control.  Threads are OCaml fibers; every
    shared access / synchronization operation is performed as an effect
    (see {!Op}) which suspends the fiber *at* the pending operation.  The
    engine then:

    - computes the enabled set exactly as the paper defines it (§2.1: a
      thread is disabled while it waits for a lock held by another thread,
      for a [join] of a live thread, or in a wait set);
    - asks the scheduling strategy which enabled thread to execute;
    - executes that thread's single pending operation — the paper's
      [Execute(s, t)] — emitting the corresponding {!Rf_events.Event} to
      listeners and to the optional trace;
    - repeats until no thread is enabled, reporting a real deadlock if some
      thread is still alive (Algorithm 1, lines 30–32), or until the step
      bound (livelock guard, cf. the paper's monitor thread, §4).

    All nondeterminism (strategy choices, notify target selection) draws
    from a single PRNG seeded by [Config.seed], so a run is replayed exactly
    by re-running with the same seed — the paper's lightweight record-free
    replay (§2.2).

    Switch policy: under [`Sync_and sites] the strategy is consulted only at
    synchronization operations and at memory accesses whose static site is
    in [sites]; other memory accesses execute immediately under the current
    thread.  This implements the paper's optimization (§4, citing [31]) that
    makes RaceFuzzer's overhead far smaller than hybrid race detection's:
    RaceFuzzer passes the racing pair as [sites], while detectors that need
    every access use [`Every_op].

    {2 Hot-path data structures (amortized O(1) per step)}

    The per-step bookkeeping never scans the whole thread population:

    - threads live in a growable array indexed by tid, so [thread] lookup
      (joins, notify targets, strategy validation) is one array read;
    - lock monitor state lives in a growable array indexed by lock id;
    - each thread caches its lockset ({!Lockset.t} is a persistent set, so
      the cached value is shared into emitted [Mem] events without
      copying), updated only at outermost acquire / innermost release;
    - enabledness is maintained {e incrementally}: every thread carries an
      [enabled_flag] (mirrored by a global count), recomputed only at the
      transitions that can change it — fork, death, acquire/release,
      wait/notify, join, interrupt.  Threads blocked acquiring a monitor
      are registered in that monitor's [contenders] list and re-evaluated
      when its holder changes; threads blocked joining are registered in
      the target's [joiners] list and woken at its death.  The scheduler
      loop never re-runs the enabledness predicate over all threads;
    - events are only constructed when someone observes them (a recorded
      trace, a listener, or verbose mode): with no sink attached, [emit]
      costs nothing — no event record, no lockset snapshot. *)

open Rf_util
open Rf_events

type switch_policy = Every_op | Sync_and of Site.Set.t

type deadline = {
  dl_wall : float option;
  dl_steps : int option;
  dl_heap_mb : float option;
  dl_heap_hook : (unit -> bool) option;
  dl_poll : int;
}

let deadline ?wall ?steps ?heap_mb ?heap_hook ?(poll = 2048) () =
  {
    dl_wall = wall;
    dl_steps = steps;
    dl_heap_mb = heap_mb;
    dl_heap_hook = heap_hook;
    dl_poll = max 1 poll;
  }

let heap_mb_now () =
  let st = Gc.quick_stat () in
  float_of_int (st.Gc.heap_words * (Sys.word_size / 8)) /. 1e6

type config = {
  seed : int;
  policy : switch_policy;
  record_trace : bool;
  max_steps : int;
  verbose : bool;
  deadline : deadline option;
}

let default_config =
  {
    seed = 0;
    policy = Every_op;
    record_trace = false;
    max_steps = 2_000_000;
    verbose = false;
    deadline = None;
  }

type fiber =
  | Not_started of (unit -> unit)
  | Running
  | Pending : 'a Op.t * ('a, unit) Effect.Deep.continuation -> fiber
  | In_waitset of {
      wlock : Lock.t;
      wdepth : int;
      wsite : Site.t;
      wk : (unit, unit) Effect.Deep.continuation;
    }
  | Finished
  | Killed of exn

type thread = {
  tid : int;
  tname : string;
  mutable fiber : fiber;
  mutable held : (int * int) list;  (* lock id -> reentrancy depth *)
  mutable lockset : Lockset.t;  (* cached: exactly the ids in [held] *)
  mutable interrupt_pending : bool;
  mutable pending_rcv : (int * Event.sync_reason) option;
  mutable death_msg : int option;
  mutable last_site : Site.t option;
  mutable lockset_id : int;  (* [lockset] interned in the binary writer *)
  mutable enabled_flag : bool;  (* maintained at enabledness transitions *)
  mutable joiners : int list;  (* live threads parked joining this one *)
  mutable entry : Strategy.entry;
      (* strategy-view row for this thread, rebuilt when it parks; sharing
         it across consultations keeps [view_of] allocation-free per row *)
}

type lock_state = {
  lname : string;
  mutable holder : int option;
  mutable depth : int;
  mutable waiters : int list;  (* FIFO arrival order; notify picks randomly *)
  mutable contenders : int list;  (* threads parked at Acquire/Reacquire *)
}

type t = {
  cfg : config;
  prng : Prng.t;
  strategy : Strategy.t;
  listeners : (Event.t -> unit) list;
  sink : bool;  (* any observer at all: trace, listener, verbose or btrace *)
  obs : bool;  (* an [Event.t]-materializing observer (not just btrace) *)
  bw : Btrace.writer option;  (* binary recording: direct, event-free appends *)
  mutable threads : thread array;  (* index = tid; first n_threads slots *)
  mutable n_threads : int;
  mutable lock_states : lock_state option array;  (* index = lock id *)
  mutable enabled_count : int;
  mutable steps : int;
  mutable switches : int;
  mutable next_msg : int;
  mutable exceptions : Outcome.exn_report list;  (* newest first *)
  mutable timed_out : bool;
  mutable cancelled : Outcome.cancel_reason option;
  t_start : float;  (* wall-clock run start; anchor for dl_wall *)
  mutable next_wall_check : int;  (* step count of the next dl_wall poll *)
  trace : Trace.t option;
}

exception Engine_invariant of string

let invariant_fail fmt = Fmt.kstr (fun s -> raise (Engine_invariant s)) fmt

(* Interned once at module init so thread death never touches the
   (mutex-protected) site registry. *)
let exit_site = Site.make "thread-exit"

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let emit eng ev =
  (match eng.trace with Some tr -> Trace.add tr ev | None -> ());
  List.iter (fun f -> f ev) eng.listeners;
  if eng.cfg.verbose then Fmt.epr "[engine] %a@." Event.pp ev

(* Emission is two-channel: [emit] materializes an [Event.t] for the
   observers (trace, listeners, verbose) while the binary writer takes
   direct appends — no event record, no lockset snapshot.  Call sites
   stay gated on [eng.sink] (any channel present); each helper then
   serves whichever channels exist. *)

let[@inline] emit_mem eng th site loc access =
  (match eng.bw with
  | Some w -> Btrace.mem w ~tid:th.tid ~site ~loc ~access ~lockset_id:th.lockset_id
  | None -> ());
  if eng.obs then
    emit eng (Event.Mem { tid = th.tid; site; loc; access; lockset = th.lockset })

let[@inline] emit_acquire eng ~tid ~lock ~site =
  (match eng.bw with Some w -> Btrace.acquire w ~tid ~lock ~site | None -> ());
  if eng.obs then emit eng (Event.Acquire { tid; lock; site })

let[@inline] emit_release eng ~tid ~lock ~site =
  (match eng.bw with Some w -> Btrace.release w ~tid ~lock ~site | None -> ());
  if eng.obs then emit eng (Event.Release { tid; lock; site })

let[@inline] emit_snd eng ~tid ~msg ~reason =
  (match eng.bw with Some w -> Btrace.snd_ w ~tid ~msg ~reason | None -> ());
  if eng.obs then emit eng (Event.Snd { tid; msg; reason })

let[@inline] emit_rcv eng ~tid ~msg ~reason =
  (match eng.bw with Some w -> Btrace.rcv w ~tid ~msg ~reason | None -> ());
  if eng.obs then emit eng (Event.Rcv { tid; msg; reason })

let[@inline] emit_start eng ~tid ~name =
  (match eng.bw with Some w -> Btrace.start w ~tid ~name | None -> ());
  if eng.obs then emit eng (Event.Start { tid; name })

let[@inline] emit_exit eng ~tid =
  (match eng.bw with Some w -> Btrace.exit_ w ~tid | None -> ());
  if eng.obs then emit eng (Event.Exit { tid })

(* Lockset changes are rare (outermost acquire / innermost release / wait /
   reacquire / death), so the binary id is re-interned only here and every
   [Mem] append reuses it. *)
let[@inline] set_lockset eng th ls =
  th.lockset <- ls;
  match eng.bw with
  | Some w -> th.lockset_id <- Btrace.intern_lockset w ls
  | None -> ()

let fresh_msg eng =
  let g = eng.next_msg in
  eng.next_msg <- g + 1;
  g

let thread eng tid =
  if tid < 0 || tid >= eng.n_threads then invariant_fail "unknown tid %d" tid
  else eng.threads.(tid)

let lock_state eng (l : Lock.t) =
  let lid = Lock.id l in
  let cap = Array.length eng.lock_states in
  if lid >= cap then begin
    let bigger = Array.make (max 8 (max (2 * cap) (lid + 1))) None in
    Array.blit eng.lock_states 0 bigger 0 cap;
    eng.lock_states <- bigger
  end;
  match eng.lock_states.(lid) with
  | Some ls -> ls
  | None ->
      let ls =
        { lname = Lock.name l; holder = None; depth = 0; waiters = []; contenders = [] }
      in
      eng.lock_states.(lid) <- Some ls;
      ls

let find_lock_state eng lid =
  if lid >= 0 && lid < Array.length eng.lock_states then eng.lock_states.(lid)
  else None

let is_dead th =
  match th.fiber with Finished | Killed _ -> true | _ -> false

let alive th = not (is_dead th)

(* ------------------------------------------------------------------ *)
(* Enabledness (paper §2.1), maintained incrementally.

   [compute_enabled] is the paper's predicate; it is evaluated only at the
   transitions that can change a thread's answer, and the result is cached
   in [enabled_flag] / [enabled_count] for the scheduler loop.           *)

let set_enabled eng th v =
  if th.enabled_flag <> v then begin
    th.enabled_flag <- v;
    eng.enabled_count <- eng.enabled_count + (if v then 1 else -1)
  end

let compute_enabled eng th =
  match th.fiber with
  | Not_started _ -> true
  | Running -> invariant_fail "enabled: thread t%d marked Running" th.tid
  | Pending (op, _) -> (
      match op with
      | Op.Acquire (l, _) ->
          let ls = lock_state eng l in
          ls.holder = None || ls.holder = Some th.tid
      | Op.Reacquire (l, _, _, _) -> (lock_state eng l).holder = None
      | Op.Join (h, _) ->
          is_dead (thread eng (Handle.tid h)) || th.interrupt_pending
      | _ -> true)
  | In_waitset _ | Finished | Killed _ -> false

let refresh_enabled eng th = set_enabled eng th (compute_enabled eng th)

(* Re-evaluate every thread parked acquiring this monitor; called whenever
   its holder changes. *)
let sweep_contenders eng ls =
  List.iter (fun tid -> refresh_enabled eng (thread eng tid)) ls.contenders

let remove_contender ls tid =
  ls.contenders <- List.filter (fun t -> t <> tid) ls.contenders

(* Registration of a freshly parked operation: set the thread's flag and
   subscribe it to the transitions that could flip it later. *)
let on_park eng th (type a) (op : a Op.t) =
  match op with
  | Op.Acquire (l, _) | Op.Reacquire (l, _, _, _) ->
      let ls = lock_state eng l in
      ls.contenders <- th.tid :: ls.contenders;
      refresh_enabled eng th
  | Op.Join (h, _) ->
      let target = thread eng (Handle.tid h) in
      if is_dead target || th.interrupt_pending then set_enabled eng th true
      else begin
        (* woken by the target's death or by an interrupt *)
        target.joiners <- th.tid :: target.joiners;
        set_enabled eng th false
      end
  | _ -> set_enabled eng th true

let new_thread eng ~name body =
  let tid = eng.n_threads in
  let th =
    {
      tid;
      tname = name;
      fiber = Not_started body;
      held = [];
      lockset = Lockset.empty;
      lockset_id = 0;
      interrupt_pending = false;
      pending_rcv = None;
      death_msg = None;
      last_site = None;
      enabled_flag = false;
      joiners = [];
      entry = { Strategy.tid; tname = name; pend = Op.P_start };
    }
  in
  let cap = Array.length eng.threads in
  if tid = cap then begin
    let bigger = Array.make (max 8 (2 * cap)) th in
    Array.blit eng.threads 0 bigger 0 cap;
    eng.threads <- bigger
  end;
  eng.threads.(tid) <- th;
  eng.n_threads <- tid + 1;
  set_enabled eng th true;
  th

(* ------------------------------------------------------------------ *)
(* Thread completion                                                   *)

let on_thread_done eng th (failure : exn option) =
  (* A dying thread force-releases any monitors it still holds (Java's
     synchronized always unwinds; explicit lock/unlock model code could
     otherwise wedge the whole system). *)
  List.iter
    (fun (lid, _) ->
      match find_lock_state eng lid with
      | Some ls when ls.holder = Some th.tid ->
          ls.holder <- None;
          ls.depth <- 0;
          if eng.sink then
            emit_release eng ~tid:th.tid ~lock:lid ~site:exit_site;
          sweep_contenders eng ls
      | _ -> ())
    th.held;
  th.held <- [];
  set_lockset eng th Lockset.empty;
  (* Death message: join edges receive from it (paper §2.2: thread t1 calls
     t2.join() and t2 terminates => SND(g, t2), RCV(g, t1)). *)
  let g = fresh_msg eng in
  th.death_msg <- Some g;
  if eng.sink then begin
    emit_snd eng ~tid:th.tid ~msg:g ~reason:Event.Join;
    emit_exit eng ~tid:th.tid
  end;
  (match failure with
  | None -> th.fiber <- Finished
  | Some e ->
      th.fiber <- Killed e;
      eng.exceptions <-
        { Outcome.xtid = th.tid; xthread = th.tname; exn_ = e; raised_at = th.last_site }
        :: eng.exceptions);
  set_enabled eng th false;
  (* Wake the joiners (fiber is settled dead at this point). *)
  List.iter (fun tid -> refresh_enabled eng (thread eng tid)) th.joiners;
  th.joiners <- []

(* ------------------------------------------------------------------ *)
(* Fiber plumbing                                                      *)

(* The effect handler merely parks the continuation on the thread record
   and returns; control then falls back to the engine loop (trampoline
   style — no stack growth across context switches). *)
let handler eng th =
  {
    Effect.Deep.retc = (fun () -> on_thread_done eng th None);
    exnc = (fun e -> on_thread_done eng th (Some e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Op.Eff op ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                th.fiber <- Pending (op, k);
                th.entry <- { th.entry with pend = Op.pend_of op };
                on_park eng th op)
        | _ -> None);
  }

let start_fiber eng th body =
  th.fiber <- Running;
  Effect.Deep.match_with body () (handler eng th)

let resume : type a. t -> thread -> (a, unit) Effect.Deep.continuation -> a -> unit =
 fun _eng th k v ->
  th.fiber <- Running;
  Effect.Deep.continue k v

let resume_exn eng th k e =
  ignore eng;
  th.fiber <- Running;
  Effect.Deep.discontinue k e

(* Deliver the RCV event a thread owes from the sync action that unblocked
   or created it, just before its next own event. *)
let flush_rcv eng th =
  match th.pending_rcv with
  | None -> ()
  | Some (msg, reason) ->
      th.pending_rcv <- None;
      if eng.sink then emit_rcv eng ~tid:th.tid ~msg ~reason

(* ------------------------------------------------------------------ *)
(* Executing one pending operation: the paper's Execute(s, t).         *)

let record_site th =
  (* [th.entry.pend] mirrors the parked op, so no pend view is rebuilt here. *)
  match Op.pend_site th.entry.Strategy.pend with
  | Some _ as s -> th.last_site <- s
  | None -> ()

let exec_op (eng : t) (th : thread) : unit =
  eng.steps <- eng.steps + 1;
  match th.fiber with
  | Not_started body ->
      flush_rcv eng th;
      if eng.sink then emit_start eng ~tid:th.tid ~name:th.tname;
      start_fiber eng th body
  | Pending (op, k) -> (
      record_site th;
      flush_rcv eng th;
      match op with
      | Op.Mem { site; loc; access } ->
          if eng.sink then emit_mem eng th site loc access;
          resume eng th k ()
      | Op.Acquire (l, site) ->
          let ls = lock_state eng l in
          remove_contender ls th.tid;
          (match ls.holder with
          | Some tid when tid = th.tid ->
              (* reentrant: no lockset change, no event *)
              ls.depth <- ls.depth + 1;
              th.held <-
                List.map
                  (fun (lid, d) -> if lid = Lock.id l then (lid, d + 1) else (lid, d))
                  th.held
          | Some other ->
              invariant_fail "acquire of L%d held by t%d scheduled for t%d"
                (Lock.id l) other th.tid
          | None ->
              ls.holder <- Some th.tid;
              ls.depth <- 1;
              th.held <- (Lock.id l, 1) :: th.held;
              set_lockset eng th (Lockset.add (Lock.id l) th.lockset);
              if eng.sink then
                emit_acquire eng ~tid:th.tid ~lock:(Lock.id l) ~site;
              sweep_contenders eng ls);
          resume eng th k ()
      | Op.Release (l, site) ->
          let ls = lock_state eng l in
          if ls.holder <> Some th.tid then
            resume_exn eng th k
              (Op.Illegal_monitor_state
                 (Fmt.str "t%d releases %a it does not hold" th.tid Lock.pp l))
          else begin
            ls.depth <- ls.depth - 1;
            if ls.depth = 0 then begin
              ls.holder <- None;
              th.held <- List.remove_assoc (Lock.id l) th.held;
              set_lockset eng th (Lockset.remove (Lock.id l) th.lockset);
              if eng.sink then
                emit_release eng ~tid:th.tid ~lock:(Lock.id l) ~site;
              sweep_contenders eng ls
            end
            else
              th.held <-
                List.map
                  (fun (lid, d) -> if lid = Lock.id l then (lid, d - 1) else (lid, d))
                  th.held;
            resume eng th k ()
          end
      | Op.Wait (l, site) ->
          let ls = lock_state eng l in
          if ls.holder <> Some th.tid then
            resume_exn eng th k
              (Op.Illegal_monitor_state
                 (Fmt.str "t%d waits on %a it does not hold" th.tid Lock.pp l))
          else if th.interrupt_pending then begin
            (* wait() on an already-interrupted thread throws immediately,
               keeping the monitor. *)
            th.interrupt_pending <- false;
            resume_exn eng th k Op.Interrupted
          end
          else begin
            let d = ls.depth in
            ls.holder <- None;
            ls.depth <- 0;
            th.held <- List.remove_assoc (Lock.id l) th.held;
            set_lockset eng th (Lockset.remove (Lock.id l) th.lockset);
            if eng.sink then
              emit_release eng ~tid:th.tid ~lock:(Lock.id l) ~site;
            ls.waiters <- ls.waiters @ [ th.tid ];
            th.fiber <- In_waitset { wlock = l; wdepth = d; wsite = site; wk = k };
            set_enabled eng th false;
            sweep_contenders eng ls
            (* no resume: the thread parks until notify/interrupt *)
          end
      | Op.Reacquire (l, d, interrupted, site) ->
          let ls = lock_state eng l in
          remove_contender ls th.tid;
          if ls.holder <> None then
            invariant_fail "reacquire of held lock L%d scheduled" (Lock.id l);
          ls.holder <- Some th.tid;
          ls.depth <- d;
          th.held <- (Lock.id l, d) :: th.held;
          set_lockset eng th (Lockset.add (Lock.id l) th.lockset);
          if eng.sink then
            emit_acquire eng ~tid:th.tid ~lock:(Lock.id l) ~site;
          sweep_contenders eng ls;
          if interrupted then begin
            th.interrupt_pending <- false;
            resume_exn eng th k Op.Interrupted
          end
          else resume eng th k ()
      | Op.Notify (l, all, _site) ->
          let ls = lock_state eng l in
          if ls.holder <> Some th.tid then
            resume_exn eng th k
              (Op.Illegal_monitor_state
                 (Fmt.str "t%d notifies %a it does not hold" th.tid Lock.pp l))
          else begin
            (match ls.waiters with
            | [] -> ()
            | waiters ->
                let chosen =
                  if all then waiters
                  else [ List.nth waiters (Prng.int eng.prng (List.length waiters)) ]
                in
                let g = fresh_msg eng in
                if eng.sink then
                  emit_snd eng ~tid:th.tid ~msg:g ~reason:Event.Notify;
                List.iter
                  (fun wtid ->
                    let wth = thread eng wtid in
                    match wth.fiber with
                    | In_waitset { wlock; wdepth; wsite; wk } ->
                        wth.pending_rcv <- Some (g, Event.Notify);
                        wth.fiber <-
                          Pending (Op.Reacquire (wlock, wdepth, false, wsite), wk);
                        wth.entry <-
                          {
                            wth.entry with
                            pend = Op.P_reacquire { lock = Lock.id wlock; site = wsite };
                          };
                        ls.contenders <- wtid :: ls.contenders;
                        refresh_enabled eng wth
                    | _ ->
                        invariant_fail "waiter t%d of L%d not in wait set" wtid
                          (Lock.id l))
                  chosen;
                ls.waiters <-
                  List.filter (fun tid -> not (List.mem tid chosen)) ls.waiters);
            resume eng th k ()
          end
      | Op.Fork (name, body) ->
          let child = new_thread eng ~name body in
          let g = fresh_msg eng in
          if eng.sink then
            emit_snd eng ~tid:th.tid ~msg:g ~reason:Event.Fork;
          child.pending_rcv <- Some (g, Event.Fork);
          resume eng th k (Handle.make ~tid:child.tid ~name)
      | Op.Join (h, _site) ->
          let target = thread eng (Handle.tid h) in
          if th.interrupt_pending then begin
            th.interrupt_pending <- false;
            target.joiners <- List.filter (fun t -> t <> th.tid) target.joiners;
            resume_exn eng th k Op.Interrupted
          end
          else begin
            if not (is_dead target) then
              invariant_fail "join of live t%d scheduled for t%d" target.tid th.tid;
            (match target.death_msg with
            | Some g ->
                if eng.sink then
                  emit_rcv eng ~tid:th.tid ~msg:g ~reason:Event.Join
            | None -> ());
            resume eng th k ()
          end
      | Op.Interrupt (h, _site) ->
          (let target = thread eng (Handle.tid h) in
           if not (is_dead target) then begin
             target.interrupt_pending <- true;
             (match target.fiber with
             | In_waitset { wlock; wdepth; wsite; wk } ->
                 (* An interrupted waiter leaves the wait set, re-contends for
                    the monitor, and then receives InterruptedException. *)
                 let ls = lock_state eng wlock in
                 ls.waiters <- List.filter (fun tid -> tid <> target.tid) ls.waiters;
                 target.fiber <-
                   Pending (Op.Reacquire (wlock, wdepth, true, wsite), wk);
                 target.entry <-
                   {
                     target.entry with
                     pend = Op.P_reacquire { lock = Lock.id wlock; site = wsite };
                   };
                 ls.contenders <- target.tid :: ls.contenders
             | _ -> ());
             if target.tid <> th.tid then refresh_enabled eng target
           end);
          resume eng th k ()
      | Op.Sleep _site ->
          if th.interrupt_pending then begin
            th.interrupt_pending <- false;
            resume_exn eng th k Op.Interrupted
          end
          else resume eng th k ()
      | Op.Pause -> resume eng th k ())
  | Running | In_waitset _ | Finished | Killed _ ->
      invariant_fail "exec_op: thread t%d not executable" th.tid

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let fast_path eng th =
  (* Under [Sync_and sites], a pending memory access whose site is not
     watched executes immediately, with no strategy consultation. *)
  match eng.cfg.policy with
  | Every_op -> false
  | Sync_and sites -> (
      match th.fiber with
      | Pending (Op.Mem { site; _ }, _) -> not (Site.Set.mem site sites)
      | _ -> false)

let rec drain_fast eng th =
  if eng.steps < eng.cfg.max_steps && fast_path eng th then begin
    exec_op eng th;
    drain_fast eng th
  end

let view_of eng =
  let entries = ref [] in
  for i = eng.n_threads - 1 downto 0 do
    let th = eng.threads.(i) in
    if th.enabled_flag then entries := th.entry :: !entries
  done;
  { Strategy.step = eng.steps; enabled = !entries; prng = eng.prng }

(* The watchdog: consulted at every switch point.  The step cap is exact
   (to switch granularity); the wall clock and heap watermark are polled
   every [dl_poll] steps, starting {e before} the first step so a run
   whose budget is already spent (e.g. a stalled harness) is cancelled
   without executing at all.  A tripped heap watermark first offers the
   overage to [dl_heap_hook] (a resource governor's degradation ladder);
   only if the hook is absent or declines does the run cancel. *)
let deadline_hit eng =
  match eng.cfg.deadline with
  | None -> None
  | Some dl -> (
      match dl.dl_steps with
      | Some cap when eng.steps >= cap -> Some Outcome.Step_deadline
      | _ ->
          if
            (dl.dl_wall <> None || dl.dl_heap_mb <> None)
            && eng.steps >= eng.next_wall_check
          then begin
            eng.next_wall_check <- eng.steps + dl.dl_poll;
            let wall_hit =
              match dl.dl_wall with
              | Some budget -> Unix.gettimeofday () -. eng.t_start > budget
              | None -> false
            in
            if wall_hit then Some Outcome.Wall_deadline
            else
              match dl.dl_heap_mb with
              | Some mb when heap_mb_now () > mb -> (
                  match dl.dl_heap_hook with
                  | Some absorb when absorb () -> None
                  | _ -> Some Outcome.Heap_watermark)
              | _ -> None
          end
          else None)

let rec loop eng =
  if eng.steps >= eng.cfg.max_steps then eng.timed_out <- true
  else
    match deadline_hit eng with
    | Some reason -> eng.cancelled <- Some reason
    | None ->
  if eng.enabled_count = 0 then ()
    (* termination or deadlock; classified by [run] *)
  else begin
    let view = view_of eng in
    eng.switches <- eng.switches + 1;
    let tid = eng.strategy.Strategy.choose view in
    let th =
      if tid >= 0 && tid < eng.n_threads && eng.threads.(tid).enabled_flag then
        eng.threads.(tid)
      else
        invariant_fail "strategy %s chose non-enabled tid %d"
          eng.strategy.Strategy.sname tid
    in
    exec_op eng th;
    drain_fast eng th;
    loop eng
  end

let run ?(config = default_config) ?(listeners = []) ?btrace ~strategy
    (main : unit -> unit) : Outcome.t =
  Loc.reset_counter ();
  Lock.reset_counter ();
  let t0 = Unix.gettimeofday () in
  let eng =
    {
      cfg = config;
      prng = Prng.create config.seed;
      strategy;
      listeners;
      sink =
        config.record_trace || listeners <> [] || config.verbose
        || btrace <> None;
      obs = config.record_trace || listeners <> [] || config.verbose;
      bw = btrace;
      threads = [||];
      n_threads = 0;
      lock_states = [||];
      enabled_count = 0;
      steps = 0;
      switches = 0;
      next_msg = 0;
      exceptions = [];
      timed_out = false;
      cancelled = None;
      t_start = t0;
      next_wall_check = 0;
      trace = (if config.record_trace then Some (Trace.create ()) else None);
    }
  in
  let (_ : thread) = new_thread eng ~name:"main" main in
  loop eng;
  let wall = Unix.gettimeofday () -. t0 in
  let blocked =
    if eng.timed_out || eng.cancelled <> None then []
    else begin
      let acc = ref [] in
      for i = eng.n_threads - 1 downto 0 do
        let th = eng.threads.(i) in
        if alive th then acc := th :: !acc
      done;
      !acc
    end
  in
  let deadlocked = List.map (fun th -> th.tid) blocked in
  let blocked_at =
    List.map
      (fun th ->
        let site =
          match th.fiber with
          | Pending (op, _) -> Op.pend_site (Op.pend_of op)
          | In_waitset { wsite; _ } -> Some wsite
          | _ -> None
        in
        (th.tid, site))
      blocked
  in
  {
    Outcome.steps = eng.steps;
    switches = eng.switches;
    threads_spawned = eng.n_threads;
    exceptions = List.rev eng.exceptions;
    deadlocked;
    blocked_at;
    timed_out = eng.timed_out;
    cancelled = eng.cancelled;
    trace = eng.trace;
    wall_time = wall;
  }
