(** Per-trial resource governor; see the interface for the model.

    The implementation is deliberately dumb: a counter, a ladder, and a
    subscriber list.  All the interesting behaviour (what compaction
    means per detector) lives in the subscribers — the governor only
    guarantees that trips happen at deterministic logical points and
    that the books balance. *)

type level = Full | Sampled | Lockset_only

let level_to_string = function
  | Full -> "full"
  | Sampled -> "sampled"
  | Lockset_only -> "lockset-only"

let level_of_string = function
  | "full" -> Some Full
  | "sampled" -> Some Sampled
  | "lockset-only" -> Some Lockset_only
  | _ -> None

let pp_level ppf l = Fmt.string ppf (level_to_string l)

type trigger = Entry_budget | Heap_watermark | Injected

let trigger_to_string = function
  | Entry_budget -> "entry-budget"
  | Heap_watermark -> "heap-watermark"
  | Injected -> "injected"

let trigger_of_string = function
  | "entry-budget" -> Some Entry_budget
  | "heap-watermark" -> Some Heap_watermark
  | "injected" -> Some Injected
  | _ -> None

exception Budget_stop of trigger

type t = {
  max_entries : int option;
  no_degrade : bool;
  mutable lv : level;
  mutable n : int;
  mutable peak : int;
  mutable evicted : int;
  mutable trips : int;
  mutable first_trigger : trigger option;
  mutable hooks : (level -> unit) list;  (* subscription order *)
  mutable tripping : bool;  (* re-entrancy guard for compaction hooks *)
}

type snapshot = {
  g_level : level;
  g_trigger : trigger option;
  g_trips : int;
  g_entries : int;
  g_peak : int;
  g_evicted : int;
}

let create ?max_entries ?(no_degrade = false) () =
  {
    max_entries;
    no_degrade;
    lv = Full;
    n = 0;
    peak = 0;
    evicted = 0;
    trips = 0;
    first_trigger = None;
    hooks = [];
    tripping = false;
  }

let unlimited () = create ()
let subscribe t f = t.hooks <- t.hooks @ [ f ]
let level t = t.lv
let entries t = t.n
let budget t = t.max_entries
let degraded t = t.trips > 0

let next_rung = function Full -> Sampled | Sampled | Lockset_only -> Lockset_only

let over_budget t =
  match t.max_entries with Some m -> t.n > m | None -> false

(* A trip must not re-enter itself: compaction hooks may legitimately
   move entries around (charge + credit) while shedding, and a nested
   trip mid-compaction would observe half-shed state.  [tripping] makes
   nested trips no-ops; hooks shed to a comfortable margin (budget/2)
   so trips stay rare rather than per-charge. *)
let trip t trigger =
  if t.no_degrade then raise (Budget_stop trigger);
  if not t.tripping then begin
    t.tripping <- true;
    Fun.protect
      ~finally:(fun () -> t.tripping <- false)
      (fun () ->
        if t.first_trigger = None then t.first_trigger <- Some trigger;
        t.trips <- t.trips + 1;
        t.lv <- next_rung t.lv;
        let lv = t.lv in
        List.iter (fun f -> f lv) t.hooks)
  end

let charge t n =
  t.n <- t.n + n;
  if t.n > t.peak then t.peak <- t.n;
  if over_budget t && not t.tripping then trip t Entry_budget

let credit t n = t.n <- max 0 (t.n - n)

let evict t n =
  t.evicted <- t.evicted + n;
  credit t n

let snapshot t =
  {
    g_level = t.lv;
    g_trigger = t.first_trigger;
    g_trips = t.trips;
    g_entries = t.n;
    g_peak = t.peak;
    g_evicted = t.evicted;
  }

let pp_snapshot ppf s =
  Fmt.pf ppf "level=%a trips=%d%a entries=%d peak=%d evicted=%d" pp_level
    s.g_level s.g_trips
    (fun ppf -> function
      | Some tr -> Fmt.pf ppf " (%s)" (trigger_to_string tr)
      | None -> ())
    s.g_trigger s.g_entries s.g_peak s.g_evicted
