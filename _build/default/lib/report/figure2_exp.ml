(** Regeneration of the paper's Figure 2 experiment (§3.2).

    The paper argues that RaceFuzzer creates the Figure 2 race with
    probability 1 and reaches ERROR with probability 0.5 *independent of*
    the number of statements before the racy read, whereas a default or
    simple random scheduler degrades as the program grows.  This harness
    sweeps the padding size [k] and, for each scheduler, estimates:

    - [p_race]: probability that statements 8 and 10 are executed
      temporally next to each other on the same location (for RaceFuzzer,
      that a real race is created; for undirected schedulers we use the
      observable proxy: reaching ERROR, which requires the adjacency);
    - [p_error]: probability that ERROR is reached. *)

open Rf_runtime
open Racefuzzer
module W = Rf_workloads

type point = {
  k : int;
  strategy_name : string;
  p_race : float;  (** NaN when not observable for this scheduler *)
  p_error : float;
  trials : int;
}

type series = point list

let racefuzzer_point ~seeds k =
  let r =
    Fuzzer.fuzz_pair ~seeds
      ~program:(fun () -> W.Figure2.program ~k ())
      W.Figure2.race_pair
  in
  let n = List.length r.Fuzzer.trials in
  {
    k;
    strategy_name = "racefuzzer";
    p_race = r.Fuzzer.probability;
    p_error = float_of_int r.Fuzzer.error_trials /. float_of_int (max 1 n);
    trials = n;
  }

let baseline_point ~seeds ~name ~make_strategy k =
  let b =
    Fuzzer.baseline ~seeds ~make_strategy (fun () -> W.Figure2.program ~k ())
  in
  {
    k;
    strategy_name = name;
    p_race = Float.nan;
    p_error = float_of_int b.Fuzzer.b_error_trials /. float_of_int (max 1 b.Fuzzer.b_trials);
    trials = b.Fuzzer.b_trials;
  }

let default_ks = [ 1; 2; 5; 10; 25; 50; 100; 200 ]

let generate ?(ks = default_ks) ?(trials = 200) () : series =
  let seeds = List.init trials Fun.id in
  List.concat_map
    (fun k ->
      [
        racefuzzer_point ~seeds k;
        baseline_point ~seeds ~name:"simple-random" ~make_strategy:Strategy.random k;
        baseline_point ~seeds ~name:"default"
          ~make_strategy:(fun () -> Strategy.timesliced ~quantum:5 ())
          k;
        baseline_point ~seeds ~name:"rapos" ~make_strategy:Rapos.strategy k;
      ])
    ks

let render ppf (series : series) =
  Fmt.pf ppf "%-6s  %-14s  %8s  %8s  %7s@." "k" "scheduler" "P(race)" "P(error)"
    "trials";
  Fmt.pf ppf "%s@." (String.make 52 '-');
  List.iter
    (fun p ->
      Fmt.pf ppf "%-6d  %-14s  %8s  %8.3f  %7d@." p.k p.strategy_name
        (if Float.is_nan p.p_race then "-" else Printf.sprintf "%.3f" p.p_race)
        p.p_error p.trials)
    series
