lib/events/trace.mli: Event Format
