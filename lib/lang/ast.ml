(** Abstract syntax of RFL.

    Every shared-memory access and synchronization statement carries its
    source position, which becomes the statement {!Rf_util.Site.t} under
    which races are detected and reported — the DSL analogue of the paper's
    statement numbering in Figures 1 and 2. *)

type pos = Token.pos

type ty = Tint | Tbool | Tstring

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "bool"
  | Tstring -> Fmt.string ppf "string"

let ty_equal a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tstring, Tstring -> true
  | _ -> false

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%"
    | Eq -> "=="
    | Neq -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | And -> "&&"
    | Or -> "||")

type expr = { e : expr_kind; epos : pos }

and expr_kind =
  | Eint of int
  | Ebool of bool
  | Estring of string
  | Evar of string  (** local or shared: resolved by the checker *)
  | Eindex of string * expr  (** shared array element *)
  | Ebin of binop * expr * expr
  | Eneg of expr
  | Enot of expr
  | Ecall of string * expr list

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Sassign of string * expr  (** x = e *)
  | Sindex_assign of string * expr * expr  (** a[i] = e *)
  | Slet of string * expr  (** let x = e *)
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sfor of stmt * expr * stmt * block  (** for (init; cond; step) *)
  | Ssync of string * block  (** sync (L) { ... } *)
  | Slock of string
  | Sunlock of string
  | Swait of string
  | Snotify of string
  | Snotify_all of string
  | Ssleep
  | Sassert of expr
  | Serror of string
  | Sprint of expr
  | Sskip
  | Sreturn of expr option
  | Scall of string * expr list  (** expression statement: f(...) *)

and block = stmt list

type func = {
  fname : string;
  fparams : (string * ty) list;
  fret : ty option;
  fbody : block;
  fpos : pos;
}

type shared_decl = {
  gname : string;
  gty : ty;
  ginit : expr;  (** checked to be a constant *)
  garray : int option;  (** Some n for [shared int[n] a;] *)
  gpos : pos;
}

type thread_decl = {
  tname : string;
  tafter : string list;
      (** names of earlier-declared threads that must be joined before this
          one is forked — [thread t2 after t0, t1 {...}].  Empty for the
          default all-parallel fork. *)
  tbody : block;
  tpos : pos;
}

type program = {
  file : string;
  shareds : shared_decl list;
  locks : (string * pos) list;
  funcs : func list;
  threads : thread_decl list;
}
