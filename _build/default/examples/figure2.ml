(* The paper's Figure 2 claim (§3.2): RaceFuzzer creates the race with
   probability 1 and reaches ERROR with probability 0.5 regardless of how
   many statements precede the racy read, while undirected schedulers
   degrade as the program grows.

   Run with:  dune exec examples/figure2.exe *)

let () =
  Fmt.pr "== Figure 2 (paper §3.2): probability vs. padding size k ==@.@.";
  let series =
    Rf_report.Figure2_exp.generate ~ks:[ 1; 10; 50; 200 ] ~trials:150 ()
  in
  Rf_report.Figure2_exp.render Fmt.stdout series;
  Fmt.pr
    "@.Reading: RaceFuzzer's columns are flat in k (P(race)=1, P(error)~0.5);@.";
  Fmt.pr "the simple random scheduler's error probability collapses as k grows.@."
