(** Potential-race reports produced by phase-1 detectors.

    A race is identified by its unordered pair of statement sites — the
    paper counts "the number of distinct pairs of statements for which there
    is a race" (§5.2) — plus a witness: the dynamic location and threads of
    the first occurrence, kept for diagnostics. *)

open Rf_util
open Rf_events

type t = {
  pair : Site.Pair.t;
  loc : Loc.t;  (** witness location of the first detection *)
  tids : int * int;  (** witness threads *)
  accesses : Event.access * Event.access;
}

let pair t = t.pair

let make ~pair ~loc ~tids ~accesses = { pair; loc; tids; accesses }

let pp ppf t =
  Fmt.pf ppf "race %a on %a (t%d %a / t%d %a)" Site.Pair.pp t.pair Loc.pp t.loc
    (fst t.tids) Event.pp_access (fst t.accesses) (snd t.tids) Event.pp_access
    (snd t.accesses)

let to_string t = Fmt.str "%a" pp t

(** Deduplicate a detection run down to distinct statement pairs. *)
let distinct_pairs races =
  List.fold_left (fun acc r -> Site.Pair.Set.add r.pair acc) Site.Pair.Set.empty races
