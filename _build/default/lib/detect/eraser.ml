(** Eraser-style lockset race detection (Savage et al. [43]).

    The classical lockset discipline checker, included as the second
    imprecise baseline the paper discusses.  Each location carries a state
    machine:

    {v
      Virgin --first access--> Exclusive(t)
      Exclusive(t) --access by t'<>t--> Shared (read) | SharedModified (write)
      Shared --write--> SharedModified
    v}

    and a candidate lockset [C(v)], initialized to the full lockset of the
    first shared access and refined by intersection on every subsequent
    access.  A race is reported when [C(v)] becomes empty in the
    [SharedModified] state.  No happens-before reasoning at all, so
    fork/join and wait/notify ordering produce false positives that even
    hybrid detection avoids.

    Reported pairs combine the emptying access's site with the previously
    recorded access sites of the location (bounded), approximating the
    statement-pair granularity of the other detectors. *)

open Rf_util
open Rf_events

type state =
  | Virgin
  | Exclusive of int * Lockset.t  (** owning thread, candidate lockset so far *)
  | Shared of Lockset.t
  | Shared_modified of Lockset.t

type cell = {
  mutable st : state;
  mutable sites : (Site.t * Event.access * int) list;  (* bounded, newest first *)
  mutable racy : bool;
}

type t = {
  cells : cell Loc.Tbl.t;
  site_cap : int;
  mutable races : Race.t list;
  mutable reported : Site.Pair.Set.t;
}

let create ?(site_cap = 16) () =
  { cells = Loc.Tbl.create 256; site_cap; races = []; reported = Site.Pair.Set.empty }

let cell t loc =
  match Loc.Tbl.find_opt t.cells loc with
  | Some c -> c
  | None ->
      let c = { st = Virgin; sites = []; racy = false } in
      Loc.Tbl.add t.cells loc c;
      c

let report t ~loc ~site ~access ~tid (prior : (Site.t * Event.access * int) list) =
  List.iter
    (fun (psite, pacc, ptid) ->
      if
        ptid <> tid
        && (Event.access_equal access Event.Write || Event.access_equal pacc Event.Write)
      then begin
        let pair = Site.Pair.make psite site in
        if not (Site.Pair.Set.mem pair t.reported) then begin
          t.reported <- Site.Pair.Set.add pair t.reported;
          t.races <-
            Race.make ~pair ~loc ~tids:(ptid, tid) ~accesses:(pacc, access) :: t.races
        end
      end)
    prior

let feed t ev =
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } ->
      let c = cell t loc in
      let next_state =
        match (c.st, access) with
        | Virgin, _ -> Exclusive (tid, lockset)
        | Exclusive (t0, ls), _ when t0 = tid ->
            Exclusive (t0, Lockset.inter ls lockset)
        | Exclusive (_, ls), Event.Read -> Shared (Lockset.inter ls lockset)
        | Exclusive (_, ls), Event.Write -> Shared_modified (Lockset.inter ls lockset)
        | Shared ls, Event.Read -> Shared (Lockset.inter ls lockset)
        | Shared ls, Event.Write -> Shared_modified (Lockset.inter ls lockset)
        | Shared_modified ls, _ -> Shared_modified (Lockset.inter ls lockset)
      in
      c.st <- next_state;
      (match next_state with
      | Shared_modified ls when Lockset.is_empty ls ->
          if not c.racy then c.racy <- true;
          report t ~loc ~site ~access ~tid c.sites
      | _ -> ());
      c.sites <-
        (site, access, tid)
        :: List.filteri (fun i _ -> i < t.site_cap - 1) c.sites
  | _ -> ()

let races t = List.rev t.races
let pairs t = t.reported
let race_count t = Site.Pair.Set.cardinal t.reported

(** Locations whose discipline was violated, regardless of pair dedup. *)
let racy_locations t =
  Loc.Tbl.fold (fun loc c acc -> if c.racy then loc :: acc else acc) t.cells []
