(* Quickstart: find, confirm, and replay a data race in an embedded model
   program — the whole RaceFuzzer pipeline in ~60 lines.

   Run with:  dune exec examples/quickstart.exe *)

open Rf_util
open Rf_runtime

(* A model program: a bank with a racy transfer. Statements that touch
   shared state name their site — that's the statement granularity at
   which races are reported. *)
let site = Api.site

let bank_program () =
  let balance = Api.Cell.make ~name:"balance" 100 in
  let audit_lock = Lock.create ~name:"audit" () in
  let log = Api.Cell.make ~name:"audit_log" 0 in
  let deposit =
    Api.fork ~name:"deposit" (fun () ->
        (* unsynchronized read-modify-write: the bug *)
        let b = Api.Cell.read ~site:(site "deposit:read balance") balance in
        Api.Cell.write ~site:(site "deposit:write balance") balance (b + 50);
        Api.sync audit_lock (fun () ->
            Api.Cell.update ~rsite:(site "deposit:log r") ~wsite:(site "deposit:log w")
              log (fun v -> v + 1)))
  in
  let withdraw =
    Api.fork ~name:"withdraw" (fun () ->
        let b = Api.Cell.read ~site:(site "withdraw:read balance") balance in
        if b >= 30 then
          Api.Cell.write ~site:(site "withdraw:write balance") balance (b - 30);
        Api.sync audit_lock (fun () ->
            Api.Cell.update ~rsite:(site "withdraw:log r")
              ~wsite:(site "withdraw:log w") log (fun v -> v + 1)))
  in
  Api.join deposit;
  Api.join withdraw;
  (* both updates applied iff no lost update *)
  let final = Api.Cell.unsafe_peek balance in
  if final <> 120 then Api.error (Printf.sprintf "money corrupted: %d" final)

let () =
  Fmt.pr "== RaceFuzzer quickstart ==@.@.";
  (* Phase 1 + phase 2 in one call. *)
  let analysis =
    Racefuzzer.Fuzzer.analyze
      ~phase1_seeds:(List.init 5 Fun.id)
      ~seeds_per_pair:(List.init 50 Fun.id)
      bank_program
  in
  let potential = Racefuzzer.Fuzzer.potential_pairs analysis.Racefuzzer.Fuzzer.a_phase1 in
  Fmt.pr "phase 1 (hybrid detection): %d potential racing pair(s)@."
    (Site.Pair.Set.cardinal potential);
  List.iter
    (fun (r : Racefuzzer.Fuzzer.pair_result) ->
      Fmt.pr "  %a -> %s@." Site.Pair.pp r.Racefuzzer.Fuzzer.pr_pair
        (if Racefuzzer.Fuzzer.is_harmful r then "REAL and HARMFUL"
         else if Racefuzzer.Fuzzer.is_real r then "real (benign)"
         else "false alarm"))
    analysis.Racefuzzer.Fuzzer.results;
  (* Replay the first harmful schedule, for debugging. *)
  match
    List.find_opt Racefuzzer.Fuzzer.is_harmful analysis.Racefuzzer.Fuzzer.results
  with
  | None -> Fmt.pr "@.no harmful race found@."
  | Some r ->
      let seed = Option.get r.Racefuzzer.Fuzzer.error_seed in
      Fmt.pr "@.replaying the lost-update schedule (seed %d):@." seed;
      let outcome, report =
        Racefuzzer.Fuzzer.replay ~seed ~program:bank_program
          r.Racefuzzer.Fuzzer.pr_pair
      in
      List.iter
        (fun h -> Fmt.pr "  %a@." Racefuzzer.Algo.pp_hit h)
        (Racefuzzer.Algo.hits report);
      List.iter
        (fun (x : Rf_runtime.Outcome.exn_report) ->
          Fmt.pr "  uncaught in %s: %s@." x.Rf_runtime.Outcome.xthread
            (Printexc.to_string x.Rf_runtime.Outcome.exn_))
        outcome.Rf_runtime.Outcome.exceptions
