(** Uniform detector interface: each phase-1 analysis as a record of
    closures usable online (as an {!Rf_runtime.Engine.run} listener) or
    offline (over a recorded trace). *)

open Rf_util
open Rf_events

(** End-of-run accounting, for journals, reports and benches.
    [st_entries] is the live logical state (retained summaries) and
    [st_mem_events] the memory events analyzed; detectors without that
    accounting (fasttrack, eraser) report zeros.  [st_miss_bound] is
    [Some] only for {!sampling}: an upper bound on the probability that
    any particular racing pair went unobserved. *)
type stats = {
  st_entries : int;
  st_mem_events : int;
  st_miss_bound : float option;
}

type t = {
  dname : string;
  feed : Event.t -> unit;
  races : unit -> Race.t list;
  pairs : unit -> Site.Pair.Set.t;
  stats : unit -> stats;
}

val name : t -> string
val feed : t -> Event.t -> unit
val races : t -> Race.t list
val pairs : t -> Site.Pair.Set.t
val race_count : t -> int
val stats : t -> stats

val hybrid : ?cap:int -> ?governor:Rf_resource.Governor.t -> unit -> t
(** O'Callahan–Choi hybrid detection [37] — the paper's phase 1: disjoint
    locksets + weak happens-before.  Predictive, imprecise.  [cap] bounds
    the per-location access history. *)

val hb_precise : ?cap:int -> ?governor:Rf_resource.Governor.t -> unit -> t
(** Classical happens-before detection [44]: precise on the observed
    execution, not predictive, tracks everything (the expensive baseline
    the paper contrasts with). *)

val fasttrack : ?governor:Rf_resource.Governor.t -> unit -> t
(** Epoch-optimized precise happens-before (FastTrack-style): same racy
    locations as {!hb_precise} at a fraction of the bookkeeping. *)

val eraser : ?site_cap:int -> ?governor:Rf_resource.Governor.t -> unit -> t
(** Eraser lockset discipline checking [43]: no happens-before at all, the
    noisiest baseline. *)

val sampling :
  ?k:int -> ?seed:int -> ?governor:Rf_resource.Governor.t -> unit -> t
(** O(1)-sample hybrid detection ({!Sampling}): [k] (default 4)
    reservoir-sampled summaries per dynamic location, reservoir
    decisions a pure function of [(seed, location, access index)] —
    deterministic and invariant across domains, shards and
    inline/offline modes.  Reported pairs are a subset of {!hybrid}'s;
    [stats] carries the run's miss-probability bound.

    All five constructors accept a {!Rf_resource.Governor}: detector
    state (access summaries, clock tables, location cells) is then
    metered against the trial's entry budget and shed down the
    degradation ladder instead of growing without bound.  Degradation is
    driven by logical counters only, so a governed run's reports are a
    deterministic function of the event stream and the budget. *)

val run_on_trace : t -> Trace.t -> Race.t list
