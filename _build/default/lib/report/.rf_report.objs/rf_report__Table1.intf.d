lib/report/table1.mli: Format Rf_workloads
