lib/core/rapos.mli: Op Rf_runtime Strategy
