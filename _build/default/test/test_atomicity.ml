(* Tests for atomicity-violation detection and directed scheduling (the
   third problem class of the paper's §1): the classic double-withdraw
   bank with a split check-then-act transaction. *)

open Rf_util
open Rf_runtime

let site_chk_sync = Api.site "bank:sync(check)"
let site_chk_read = Api.site "bank:read balance (check)"
let site_wd_sync = Api.site "bank:sync(withdraw)"
let site_wd_read = Api.site "bank:read balance (withdraw)"
let site_wd_write = Api.site "bank:write balance (withdraw)"

(* A bank account with lock-protected but non-atomic withdraw: the check
   and the debit live in separate critical sections. *)
let bank ?(atomic = false) ?(amount = 80) () =
  let balance = Api.Cell.make ~name:"balance" 100 in
  let l = Lock.create ~name:"account" () in
  let withdraw () =
    if atomic then
      Api.sync ~site:site_chk_sync l (fun () ->
          if Api.Cell.read ~site:site_chk_read balance >= amount then
            Api.Cell.write ~site:site_wd_write balance
              (Api.Cell.read ~site:site_wd_read balance - amount))
    else begin
      let enough =
        Api.sync ~site:site_chk_sync l (fun () ->
            Api.Cell.read ~site:site_chk_read balance >= amount)
      in
      if enough then
        (* the gap: another withdrawer can slip in here *)
        Api.sync ~site:site_wd_sync l (fun () ->
            Api.Cell.write ~site:site_wd_write balance
              (Api.Cell.read ~site:site_wd_read balance - amount))
    end
  in
  let a = Api.fork ~name:"alice" withdraw in
  let b = Api.fork ~name:"bob" withdraw in
  Api.join a;
  Api.join b;
  let final = Api.Cell.unsafe_peek balance in
  if final < 0 then Api.error (Printf.sprintf "overdraft: balance = %d" final)

(* ------------------------------------------------------------------ *)
(* Phase 1                                                             *)

let test_phase1_finds_split_transaction () =
  let cands = Racefuzzer.Atom_fuzzer.phase1 ~seeds:(List.init 10 Fun.id) (fun () -> bank ()) in
  Alcotest.(check bool) "candidates found" true (cands <> []);
  Alcotest.(check bool) "targets the withdraw re-entry" true
    (List.exists
       (fun (c : Rf_detect.Atomicity.candidate) ->
         Site.equal c.Rf_detect.Atomicity.second_acquire site_wd_sync
         && Site.equal c.Rf_detect.Atomicity.interferer_site site_wd_write)
       cands)

let test_phase1_silent_on_atomic_version () =
  let cands =
    Racefuzzer.Atom_fuzzer.phase1 ~seeds:(List.init 10 Fun.id) (fun () -> bank ~atomic:true ())
  in
  Alcotest.(check (list string)) "no candidates" []
    (List.map
       (fun c -> Fmt.str "%a" Rf_detect.Atomicity.pp_candidate c)
       cands)

let test_race_detectors_silent_on_bank () =
  (* the point of atomicity checking: the split bank is perfectly
     lock-disciplined, so no race detector reports anything *)
  let hy = Rf_detect.Detector.hybrid () in
  let er = Rf_detect.Detector.eraser () in
  List.iter
    (fun seed ->
      ignore
        (Engine.run
           ~config:{ Engine.default_config with seed }
           ~listeners:[ Rf_detect.Detector.feed hy; Rf_detect.Detector.feed er ]
           ~strategy:(Strategy.random ()) (fun () -> bank ())))
    (List.init 10 Fun.id);
  Alcotest.(check int) "hybrid silent" 0 (Rf_detect.Detector.race_count hy);
  Alcotest.(check int) "eraser silent" 0 (Rf_detect.Detector.race_count er)

(* ------------------------------------------------------------------ *)
(* Phase 2                                                             *)

let analyze ?(trials = 60) program =
  Racefuzzer.Atom_fuzzer.analyze
    ~phase1_seeds:(List.init 10 Fun.id)
    ~seeds_per_candidate:(List.init trials Fun.id)
    program

let test_fuzzer_realizes_violation () =
  let results = analyze (fun () -> bank ()) in
  Alcotest.(check bool) "some candidate real" true
    (List.exists Racefuzzer.Atom_fuzzer.is_real results);
  let best =
    List.fold_left
      (fun acc r -> max acc r.Racefuzzer.Atom_fuzzer.ac_probability)
      0.0 results
  in
  Alcotest.(check bool)
    (Printf.sprintf "high violation probability (%.2f)" best)
    true (best > 0.5)

let test_fuzzer_surfaces_overdraft () =
  let results = analyze (fun () -> bank ()) in
  Alcotest.(check bool) "overdraft error reached" true
    (List.exists Racefuzzer.Atom_fuzzer.is_harmful results)

let test_fuzzer_beats_undirected_random () =
  let undirected =
    Racefuzzer.Fuzzer.baseline
      ~seeds:(List.init 60 Fun.id)
      ~make_strategy:Strategy.random (fun () -> bank ())
  in
  let results = analyze (fun () -> bank ()) in
  let directed_errors =
    List.fold_left
      (fun acc r -> max acc r.Racefuzzer.Atom_fuzzer.ac_error_trials)
      0 results
  in
  Alcotest.(check bool)
    (Printf.sprintf "directed (%d/60) >= undirected (%d/60)" directed_errors
       undirected.Racefuzzer.Fuzzer.b_error_trials)
    true
    (directed_errors >= undirected.Racefuzzer.Fuzzer.b_error_trials);
  Alcotest.(check bool) "directed finds it at all" true (directed_errors > 0)

let test_fuzzer_rejects_atomic_version () =
  let results = analyze (fun () -> bank ~atomic:true ()) in
  Alcotest.(check bool) "no candidates to confirm" true (results = [])

let test_violation_seed_replays () =
  let results = analyze (fun () -> bank ()) in
  match List.find_opt Racefuzzer.Atom_fuzzer.is_real results with
  | None -> Alcotest.fail "no real candidate"
  | Some r -> (
      match r.Racefuzzer.Atom_fuzzer.ac_seed with
      | None -> Alcotest.fail "no seed"
      | Some seed ->
          let again =
            Racefuzzer.Atom_fuzzer.fuzz_candidate ~seeds:[ seed ] ~program:(fun () -> bank ())
              r.Racefuzzer.Atom_fuzzer.ac_candidate
          in
          Alcotest.(check int) "replayed violation" 1
            again.Racefuzzer.Atom_fuzzer.ac_violation_trials)

let () =
  Alcotest.run "rf_atomicity"
    [
      ( "phase1",
        [
          Alcotest.test_case "finds split transaction" `Quick
            test_phase1_finds_split_transaction;
          Alcotest.test_case "silent on atomic version" `Quick
            test_phase1_silent_on_atomic_version;
          Alcotest.test_case "race detectors silent" `Quick
            test_race_detectors_silent_on_bank;
        ] );
      ( "phase2",
        [
          Alcotest.test_case "realizes violation" `Quick test_fuzzer_realizes_violation;
          Alcotest.test_case "surfaces overdraft" `Quick test_fuzzer_surfaces_overdraft;
          Alcotest.test_case "beats undirected" `Quick
            test_fuzzer_beats_undirected_random;
          Alcotest.test_case "rejects atomic version" `Quick
            test_fuzzer_rejects_atomic_version;
          Alcotest.test_case "seed replays" `Quick test_violation_seed_replays;
        ] );
    ]
