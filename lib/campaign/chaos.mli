(** Deterministic chaos injection for exercising the campaign's fault
    tolerance: injected harness crashes, artificial stalls, worker deaths
    and early stops, all derived from one chaos seed.

    The invariant that makes chaos useful as a {e test} rather than mere
    noise: result-bearing faults (crashes, stalls) are pure functions of
    (chaos seed, pair label, trial seed), so every run of the same campaign
    under the same chaos plan quarantines the same pairs and produces the
    same fingerprint — regardless of domain count, worker deaths, or
    kill/resume boundaries.  Liveness-only faults (worker deaths) are
    counter-based and may land on different tasks run-to-run; they must not
    (and, because aggregation is domain-agnostic, do not) affect results. *)

type plan = {
  c_seed : int;
  c_crash_rate : float;  (** probability a trial raises {!Injected_crash} *)
  c_stall_rate : float;  (** probability a trial sleeps before starting *)
  c_stall_seconds : float;
  c_budget_rate : float;
      (** probability a trial's resource governor is tripped down one
          degradation rung at start ({!trips_budget}) *)
  c_trial_deadline : float option;
      (** per-trial wall watchdog to apply campaign-wide, so stalls are
          cancelled rather than waited out *)
  c_death_every : int option;  (** kill a worker every N task pops *)
  c_max_deaths : int;
  c_stop_after : int option;
      (** request a graceful campaign stop after N executed trials — the
          deterministic "kill" half of kill/resume tests *)
  c_kill_assignment : int option;
      (** multi-process campaigns only: the worker holding the Nth
          dispatched assignment SIGKILLs itself on receipt — a {e real}
          process death, exercising reap/requeue/respawn *)
  c_torn_frame : int option;
      (** multi-process campaigns only: the worker holding the Nth
          assignment replies with a deliberately corrupted IPC frame, so
          the supervisor must detect it ({!Proc_pool.Frame.Corrupt}) and
          treat the worker as dead rather than misparse the result *)
  c_hang_assignment : int option;
      (** multi-process campaigns only: the worker holding the Nth
          assignment hangs forever, forcing the supervisor's
          heartbeat-deadline SIGKILL *)
  c_die_reval : int option;
      (** serve mode only: the process SIGKILLs itself just before
          persisting the Nth re-validation verdict of this process run —
          the deterministic "crash mid-cycle" half of ledger-resume tests *)
  c_fail_reval : int option;
      (** serve mode only: every replay attempt of the Nth item processed
          this run raises {!Injected_crash}, driving the retry budget to
          exhaustion and (with enough strikes) quarantine *)
  c_torn_index_cycle : int option;
      (** serve mode only: a torn garbage line is appended to the corpus
          index at the start of the Nth cycle, before the heal step *)
  c_torn_ledger_cycle : int option;
      (** serve mode only: same as {!c_torn_index_cycle} but for the
          scheduler ledger *)
  c_watch_storm : int option;
      (** serve mode only: during the Nth cycle every watched target
          reports as changed at once; the service must coalesce to at most
          one re-run per target per cycle *)
}

val plan :
  ?crash_rate:float ->
  ?stall_rate:float ->
  ?stall_seconds:float ->
  ?budget_rate:float ->
  ?trial_deadline:float ->
  ?death_every:int ->
  ?max_deaths:int ->
  ?stop_after:int ->
  ?kill_assignment:int ->
  ?torn_frame:int ->
  ?hang_assignment:int ->
  ?die_reval:int ->
  ?fail_reval:int ->
  ?torn_index_cycle:int ->
  ?torn_ledger_cycle:int ->
  ?watch_storm:int ->
  int ->
  plan
(** [plan seed] with everything off by default; enable faults explicitly. *)

val default : int -> plan
(** The [--chaos] preset: 8% crashes, 4% stalls, 5% budget trips, a 2s
    trial deadline, a worker death every 25 pops (max 2). *)

exception Injected_crash of string
(** Raised inside the trial sandbox; surfaces as
    [Fuzzer.Harness_crash]. *)

exception Injected_death
(** Raised on a worker thread outside any sandbox; kills the domain so the
    supervisor must respawn it and requeue the in-flight task. *)

val crashes : plan -> label:string -> seed:int -> bool
val stalls : plan -> label:string -> seed:int -> bool

val trips_budget : plan -> label:string -> seed:int -> bool
(** Whether this trial's governor is forced one rung down the degradation
    ladder before the engine starts — deterministic per (plan, label,
    seed), so degraded trials land identically across domain counts and
    kill/resume boundaries. *)

val inject : plan -> label:string -> seed:int -> unit -> unit
(** The [?inject] hook for [Fuzzer.run_trial]: sleep if the trial stalls,
    then raise {!Injected_crash} if it crashes. *)

(** {1 Worker deaths} *)

type state
(** Mutable death bookkeeping shared by all workers of one campaign. *)

val state : unit -> state

val kills_worker : plan -> state -> bool
(** Count a task pop; [true] when this pop should kill its worker (the
    caller raises {!Injected_death} after safely recording the in-flight
    task).  At most [c_max_deaths] grants, atomically enforced. *)

val deaths : state -> int
