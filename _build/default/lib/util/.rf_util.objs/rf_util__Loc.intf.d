lib/util/loc.mli: Format Hashtbl Map Set
